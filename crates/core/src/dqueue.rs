//! An indexed drive queue: slab-allocated pending requests with incremental
//! per-policy indexes, so a scheduling pick costs time proportional to the
//! work it inspects rather than the queue depth.
//!
//! [`crate::sched::pick`] is a scan: every decision touches every queued
//! entry (bounding, heaping), even though arrivals and completions change
//! the queue by one entry at a time. [`DriveQueue`] moves that work to the
//! mutation sites:
//!
//! - Entries live in a **slab** with stable, generation-tagged
//!   [`TaskId`]s; queues and indexes store ids, never moved structs.
//! - **SATF/RSATF** maintain a *rotational bucket index*: every candidate
//!   (entry × replica) is bucketed by (cylinder band × angle slot). A pick
//!   walks bands outward from the arm in ascending seek-lower-bound order
//!   and stops as soon as the next band's bound exceeds the incumbent's
//!   full cost; within a band, candidates are visited starting from the
//!   angle slot nearest the current platter phase so good incumbents are
//!   found early (visit order within a band cannot change the winner — see
//!   the exactness argument below).
//! - **LOOK/RLOOK** maintain a sweep index (`BTreeMap` keyed by cylinder):
//!   the next in-direction cylinder is one ordered lookup.
//! - **FCFS** maintains an arrival-ordered set: the oldest entry is the
//!   first element.
//!
//! # Exactness
//!
//! Each indexed pick returns *exactly* the entry and replica that
//! [`crate::sched::pick`] would return on the queue's arrival-order
//! snapshot:
//!
//! - Arrival order is tracked explicitly (`order`, always sorted by a
//!   per-queue monotone sequence number), so the scan's positional
//!   tie-break `(cost, queue index, candidate)` is reproduced as
//!   `(cost, seq, candidate)`.
//! - The SATF walk terminates on the same condition as the scan's
//!   bound-ordered heap — "stop when the next lower bound exceeds the
//!   incumbent's cost" — using the *band's* minimum seek distance, which
//!   lower-bounds every member. Visiting a few extra candidates whose own
//!   bound exceeds the incumbent is harmless: their cost is at least their
//!   bound, so they lose outright (cost strictly greater), and the
//!   tie-break never sees them.
//! - The angle slot orders visits *within* a band only. All members of a
//!   band share the same termination bound, so visit order among them
//!   affects how fast the incumbent improves, never who finally wins.
//!
//! Two situations fall outside the index's guarantees, and
//! [`DriveQueue::pick`] detects both and falls back to the windowed scan:
//! queues deeper than the scheduling window (the scan only examines the
//! window prefix, the index spans everything), and drives with track
//! read-ahead enabled (a potential buffer hit has positioning bound 0
//! regardless of seek distance, which breaks band-order monotonicity).
//!
//! The equivalence tests at the bottom drive randomized queues through
//! both implementations and require identical picks — entry, replica, and
//! sweep-direction side effects — across every policy.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

use mimd_disk::{mod1, SimDisk};
use mimd_sim::{SimDuration, SimTime};

use crate::sched::{self, LookState, Policy, Schedulable};

/// Cylinders per band of the SATF bucket index.
const BAND_CYLS: u32 = 16;
/// Angle slots per band (within-band visit ordering).
const NSLOTS: usize = 16;
/// Safety margin for the rotational lower-bound prune in
/// [`DriveQueue::visit_band`]: candidates within this much of the
/// incumbent's cost are always evaluated. The engine's rotational waits
/// round float phase arithmetic to integer nanoseconds, so the analytic
/// bound can overshoot the true cost by under a nanosecond; a microsecond
/// of slop (≲0.02% of a rotation) makes the prune unconditionally sound
/// while giving up almost none of its power.
const ROT_PRUNE_SLOP_NS: u64 = 1_000;

/// A stable handle to a slab-resident task.
///
/// The generation tag makes stale handles harmless: removing a task and
/// reusing its slot bumps the generation, so an old id no longer matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaskId {
    slot: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot<S> {
    task: Option<S>,
    gen: u32,
    seq: u64,
}

/// One bucketed candidate of the SATF index.
#[derive(Debug, Clone)]
struct BandEntry {
    seq: u64,
    slot: u32,
    cand: u8,
    /// Angle slot of the candidate (visit-ordering hint, not correctness).
    aslot: u8,
    /// Memoised effective target phase ([`SimDisk::sched_phase`]), `NaN`
    /// until the candidate is first evaluated. It is computed once per
    /// queued candidate instead of once per evaluation, and doubles as the
    /// input to the rotational lower-bound prune in
    /// [`DriveQueue::visit_band`]. The phase folds in the disk's mutable
    /// spindle-phase offset, so the memo is valid only while `epoch`
    /// matches [`SimDisk::phase_epoch`].
    // simlint: shard-local(per-queue memo owned by one DriveQueue/SimDisk pair, which lives inside exactly one engine Shard and moves with it between worker threads; epoch-stamped against phase changes)
    phase: Cell<f64>,
    /// [`SimDisk::phase_epoch`] at the time `phase` was computed; a
    /// mismatch invalidates the memo, so a stale phase can never survive
    /// a `set_phase_offset`.
    // simlint: shard-local(validity stamp for the phase memo above)
    epoch: Cell<u32>,
}

/// A drive queue with incremental per-policy indexes. See the module docs.
#[derive(Debug)]
pub struct DriveQueue<S: Schedulable> {
    policy: Policy,
    cylinders: u32,
    slots: Vec<Slot<S>>,
    free: Vec<u32>,
    /// Live ids in arrival order (ascending `seq`).
    order: Vec<TaskId>,
    next_seq: u64,
    /// SATF/RSATF: per-band candidate buckets, allocated on first use.
    bands: Vec<Vec<BandEntry>>,
    /// One bit per band: set iff the band bucket is non-empty.
    band_bits: Vec<u64>,
    /// LOOK/RLOOK: cylinder → (enqueued ns, seq, slot) of primary targets.
    sweep: BTreeMap<u32, BTreeSet<(u64, u64, u32)>>,
    /// FCFS: (enqueued ns, seq, slot), oldest first.
    fcfs: BTreeSet<(u64, u64, u32)>,
}

impl<S: Schedulable> DriveQueue<S> {
    /// Creates an empty queue for a disk with `cylinders` cylinders,
    /// indexed for `policy`.
    pub fn new(policy: Policy, cylinders: u32) -> Self {
        DriveQueue {
            policy,
            cylinders: cylinders.max(1),
            slots: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            next_seq: 0,
            bands: Vec::new(),
            band_bits: Vec::new(),
            sweep: BTreeMap::new(),
            fcfs: BTreeSet::new(),
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The task behind `id`, if it is still queued.
    pub fn get(&self, id: TaskId) -> Option<&S> {
        let s = self.slots.get(id.slot as usize)?;
        if s.gen != id.gen {
            return None;
        }
        s.task.as_ref()
    }

    /// Live ids in arrival order.
    pub fn ids(&self) -> &[TaskId] {
        &self.order
    }

    /// Drops every queued task, invalidating all outstanding ids while
    /// keeping the queue's allocations for reuse.
    pub fn clear(&mut self) {
        for id in self.order.drain(..) {
            let s = &mut self.slots[id.slot as usize];
            s.task = None;
            s.gen = s.gen.wrapping_add(1);
            self.free.push(id.slot);
        }
        for bucket in &mut self.bands {
            bucket.clear();
        }
        self.band_bits.fill(0);
        self.sweep.clear();
        self.fcfs.clear();
    }

    /// Inserts a task at the back of the arrival order.
    pub fn insert(&mut self, task: S) -> TaskId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    task: None,
                    gen: 0,
                    seq: 0,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let sref = &mut self.slots[slot as usize];
        sref.task = Some(task);
        sref.seq = seq;
        let id = TaskId {
            slot,
            gen: sref.gen,
        };
        self.order.push(id);
        self.index_insert(id, seq);
        id
    }

    /// Removes and returns the task behind `id`; `None` if the id is stale.
    pub fn remove(&mut self, id: TaskId) -> Option<S> {
        let s = self.slots.get(id.slot as usize)?;
        if s.gen != id.gen || s.task.is_none() {
            return None;
        }
        let seq = s.seq;
        mimd_sim::sim_invariant!(
            self.order.len() < 2
                || self.order.windows(2).all(
                    |w| self.slots[w[0].slot as usize].seq < self.slots[w[1].slot as usize].seq
                ),
            "drive-queue arrival order out of seq order"
        );
        // `order` is sorted by seq, so the position is a binary search.
        let pos = self
            .order
            .binary_search_by_key(&seq, |i| self.slots[i.slot as usize].seq)
            .ok()?;
        self.index_remove(id, seq);
        self.order.remove(pos);
        let sref = &mut self.slots[id.slot as usize];
        sref.gen = sref.gen.wrapping_add(1);
        self.free.push(id.slot);
        sref.task.take()
    }

    /// Mutates the task behind `id` in place, keeping its arrival position,
    /// and re-indexes it (targets and enqueued time may have changed).
    /// Returns whether the id was live.
    pub fn replace_with(&mut self, id: TaskId, f: impl FnOnce(&mut S)) -> bool {
        let Some(s) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if s.gen != id.gen || s.task.is_none() {
            return false;
        }
        let seq = s.seq;
        self.index_remove(id, seq);
        if let Some(task) = self.slots[id.slot as usize].task.as_mut() {
            f(task);
        }
        self.index_insert(id, seq);
        true
    }

    /// Picks the next task for an idle disk exactly as
    /// [`crate::sched::pick`] would on the arrival-order prefix of at most
    /// `window` entries, returning the winning id and replica index.
    ///
    /// Uses the policy's incremental index when the whole queue fits in the
    /// window (and, for SATF/RSATF, the drive's read-ahead buffer is off);
    /// otherwise falls back to the windowed scan.
    pub fn pick(
        &self,
        disk: &SimDisk,
        now: SimTime,
        look: &mut LookState,
        slack: SimDuration,
        window: usize,
    ) -> Option<(TaskId, usize)> {
        if self.order.is_empty() {
            return None;
        }
        if self.order.len() > window {
            return self.pick_scan(disk, now, look, slack, window);
        }
        match self.policy {
            Policy::Fcfs => self.pick_fcfs(disk, now, slack),
            Policy::Look | Policy::Rlook => self.pick_look(disk, now, look, slack),
            Policy::Satf | Policy::Rsatf => {
                if disk.read_ahead_enabled() {
                    self.pick_scan(disk, now, look, slack, window)
                } else {
                    self.pick_satf(disk, now, slack)
                }
            }
        }
    }

    /// The fallback: materialise the window prefix and run the scan.
    fn pick_scan(
        &self,
        disk: &SimDisk,
        now: SimTime,
        look: &mut LookState,
        slack: SimDuration,
        window: usize,
    ) -> Option<(TaskId, usize)> {
        let window = window.min(self.order.len());
        let refs: Vec<&S> = self.order[..window]
            .iter()
            .map(|&id| {
                self.slots[id.slot as usize]
                    .task
                    .as_ref()
                    .expect("order holds live ids") // simlint: allow(panic) — queue invariant
            })
            .collect();
        let p = sched::pick(self.policy, disk, now, &refs, look, slack)?;
        Some((self.order[p.queue_index], p.candidate))
    }

    fn pick_fcfs(
        &self,
        disk: &SimDisk,
        now: SimTime,
        slack: SimDuration,
    ) -> Option<(TaskId, usize)> {
        let &(_, seq, slot) = self.fcfs.iter().next()?;
        let id = self.id_at(slot, seq)?;
        let task = self.get(id)?;
        Some((id, sched::best_candidate(disk, now, task, true, slack)))
    }

    fn pick_look(
        &self,
        disk: &SimDisk,
        now: SimTime,
        look: &mut LookState,
        slack: SimDuration,
    ) -> Option<(TaskId, usize)> {
        let head = disk.arm_cylinder();
        let aware = self.policy.replica_aware();
        // One flip allowed, exactly like the scan's end-of-stroke turn.
        for _ in 0..2 {
            let hit = if look.upward {
                self.sweep.range(head..).next()
            } else {
                self.sweep.range(..=head).next_back()
            };
            if let Some((_, set)) = hit {
                let &(_, seq, slot) = set.iter().next()?;
                let id = self.id_at(slot, seq)?;
                let task = self.get(id)?;
                return Some((id, sched::best_candidate(disk, now, task, aware, slack)));
            }
            look.upward = !look.upward;
        }
        None
    }

    fn pick_satf(
        &self,
        disk: &SimDisk,
        now: SimTime,
        slack: SimDuration,
    ) -> Option<(TaskId, usize)> {
        let arm = disk.arm_cylinder();
        let arm_band = (arm / BAND_CYLS) as usize;
        let nbands = self.band_count();
        // Platter phase as an angle slot: the starting point for
        // within-band visit ordering.
        let ref_slot = Self::angle_slot(disk.angle_at(now));
        let mut best: Option<(u64, u64, u8, u32)> = None; // (cost, seq, cand, slot)
        if self.band_occupied(arm_band) {
            self.visit_band(disk, now, slack, arm_band, ref_slot, 0, &mut best);
        }
        // Walk outward, merging the up and down cursors by seek bound.
        // Each cursor's bound is computed once, when it advances.
        let bound_of = |b: usize| disk.seek_bound_ns(self.band_min_dist(b, arm));
        let mut up = self.next_band_at_or_above(arm_band + 1);
        let mut bound_up = up.map(&bound_of);
        let mut down = if arm_band > 0 {
            self.next_band_at_or_below(arm_band - 1)
        } else {
            None
        };
        let mut bound_down = down.map(&bound_of);
        loop {
            let (band, bound, is_up) = match (up, down) {
                (None, None) => break,
                (Some(b), None) => (b, bound_up.unwrap_or(u64::MAX), true),
                (None, Some(b)) => (b, bound_down.unwrap_or(u64::MAX), false),
                (Some(bu), Some(bd)) => {
                    let (u, d) = (bound_up.unwrap_or(u64::MAX), bound_down.unwrap_or(u64::MAX));
                    // Ties go upward: a fixed rule keeps the walk
                    // deterministic (either order would be exact).
                    if u <= d {
                        (bu, u, true)
                    } else {
                        (bd, d, false)
                    }
                }
            };
            if let Some((bcost, _, _, _)) = best {
                if bound > bcost {
                    break; // Every remaining band's bound is at least this.
                }
            }
            self.visit_band(disk, now, slack, band, ref_slot, bound, &mut best);
            if is_up {
                up = if band + 1 < nbands {
                    self.next_band_at_or_above(band + 1)
                } else {
                    None
                };
                bound_up = up.map(&bound_of);
            } else {
                down = if band > 0 {
                    self.next_band_at_or_below(band - 1)
                } else {
                    None
                };
                bound_down = down.map(&bound_of);
            }
        }
        let (_, seq, cand, slot) = best?;
        let id = self.id_at(slot, seq)?;
        Some((id, cand as usize))
    }

    /// Evaluates every candidate in a band against the incumbent, visiting
    /// from the angle slot nearest `ref_slot` onward (wrap-around).
    ///
    /// `bound` is the band's seek lower bound (`SimDisk::seek_bound_ns` of
    /// its minimum arm distance). Candidates with a known phase are first
    /// checked against a rotational lower bound: the earliest any of them
    /// can arrive is `now + overhead + bound`, and first-hit times on a
    /// uniformly rotating platter are monotone in the arrival instant, so
    /// `bound + forward-wait-from-the-floor` never exceeds the candidate's
    /// true cost (the slack penalty only adds). [`ROT_PRUNE_SLOP_NS`]
    /// absorbs the sub-nanosecond rounding between this bound's float
    /// arithmetic and the engine's rounded integer waits, so a candidate is
    /// skipped only when it loses by a wide margin — equal-cost candidates
    /// are always evaluated and the `(cost, seq, cand)` tie-break is
    /// preserved exactly.
    #[allow(clippy::too_many_arguments)]
    fn visit_band(
        &self,
        disk: &SimDisk,
        now: SimTime,
        slack: SimDuration,
        band: usize,
        ref_slot: u8,
        bound: u64,
        best: &mut Option<(u64, u64, u8, u32)>,
    ) {
        let bucket = &self.bands[band];
        let floor = disk.arrival_phase_floor(now, bound);
        let period = disk.rotation_ns() as f64;
        let disk_epoch = disk.phase_epoch();
        // Entries are kept sorted by aslot; start at the first entry whose
        // slot is at or past the platter phase, then wrap.
        let pivot = bucket.partition_point(|e| e.aslot < ref_slot);
        let n = bucket.len();
        for k in 0..n {
            let e = &bucket[(pivot + k) % n];
            // A memo stamped under an older spindle-phase epoch is stale:
            // treat it as unset and re-derive below.
            let mut phase = if e.epoch.get() == disk_epoch {
                e.phase.get()
            } else {
                f64::NAN
            };
            if !phase.is_nan() {
                if let Some((bcost, _, _, _)) = *best {
                    // Truncating the float wait only lowers the bound.
                    let rot_lb = (mod1(phase - floor) * period) as u64;
                    if bound.saturating_add(rot_lb) > bcost.saturating_add(ROT_PRUNE_SLOP_NS) {
                        continue;
                    }
                }
            }
            let Some(task) = self
                .slots
                .get(e.slot as usize)
                .and_then(|s| (s.seq == e.seq).then_some(s.task.as_ref()).flatten())
            else {
                continue;
            };
            let target = &task.candidates()[e.cand as usize];
            if phase.is_nan() {
                phase = disk.sched_phase(target);
                e.phase.set(phase);
                e.epoch.set(disk_epoch);
            }
            let cost =
                sched::candidate_cost_at_phase(disk, now, target, task.is_write(), slack, phase);
            let wins = match *best {
                None => true,
                Some((bcost, bseq, bcand, _)) => {
                    cost < bcost || (cost == bcost && (e.seq, e.cand) < (bseq, bcand))
                }
            };
            if wins {
                *best = Some((cost, e.seq, e.cand, e.slot));
            }
        }
    }

    fn id_at(&self, slot: u32, seq: u64) -> Option<TaskId> {
        let s = self.slots.get(slot as usize)?;
        if s.seq != seq || s.task.is_none() {
            return None;
        }
        Some(TaskId { slot, gen: s.gen })
    }

    fn angle_slot(angle: f64) -> u8 {
        (((mod1(angle)) * NSLOTS as f64) as usize).min(NSLOTS - 1) as u8
    }

    fn band_count(&self) -> usize {
        self.cylinders.div_ceil(BAND_CYLS) as usize
    }

    fn band_min_dist(&self, band: usize, arm: u32) -> u32 {
        let lo = band as u32 * BAND_CYLS;
        let hi = (lo + BAND_CYLS - 1).min(self.cylinders - 1);
        if arm < lo {
            lo - arm
        } else {
            arm.saturating_sub(hi)
        }
    }

    fn band_occupied(&self, band: usize) -> bool {
        self.band_bits
            .get(band / 64)
            .is_some_and(|w| w & (1 << (band % 64)) != 0)
    }

    fn next_band_at_or_above(&self, from: usize) -> Option<usize> {
        let nwords = self.band_bits.len();
        let (mut w, bit) = (from / 64, from % 64);
        if w >= nwords {
            return None;
        }
        let mut word = self.band_bits[w] & (!0u64 << bit);
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= nwords {
                return None;
            }
            word = self.band_bits[w];
        }
    }

    fn next_band_at_or_below(&self, from: usize) -> Option<usize> {
        let (mut w, bit) = (from / 64, from % 64);
        if w >= self.band_bits.len() {
            return None;
        }
        let mask = if bit == 63 {
            !0u64
        } else {
            (1u64 << (bit + 1)) - 1
        };
        let mut word = self.band_bits[w] & mask;
        loop {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = self.band_bits[w];
        }
    }

    fn index_insert(&mut self, id: TaskId, seq: u64) {
        // Move the task out of its slot for the duration: the index
        // structures and the slab are both `self`, and a by-value move is
        // free (no clone) while keeping borrows disjoint and the hot path
        // allocation-free.
        let Some(task) = self.slots[id.slot as usize].task.take() else {
            return;
        };
        match self.policy {
            Policy::Fcfs => {
                self.fcfs.insert((task.enqueued().as_nanos(), seq, id.slot));
            }
            Policy::Look | Policy::Rlook => {
                let cyl = task.candidates()[0].cylinder;
                let enq = task.enqueued().as_nanos();
                let slot = id.slot;
                self.sweep.entry(cyl).or_default().insert((enq, seq, slot));
            }
            Policy::Satf | Policy::Rsatf => {
                if self.bands.is_empty() {
                    let n = self.band_count();
                    self.bands = (0..n).map(|_| Vec::new()).collect();
                    self.band_bits = vec![0; n.div_ceil(64)];
                }
                let limit = if self.policy.replica_aware() {
                    task.candidates().len()
                } else {
                    1
                };
                for (c, t) in task.candidates().iter().take(limit).enumerate() {
                    let band = ((t.cylinder.min(self.cylinders - 1)) / BAND_CYLS) as usize;
                    let e = BandEntry {
                        seq,
                        slot: id.slot,
                        cand: c as u8,
                        aslot: Self::angle_slot(t.angle),
                        phase: Cell::new(f64::NAN),
                        epoch: Cell::new(0),
                    };
                    let bucket = &mut self.bands[band];
                    // Keep sorted by aslot (stable: equal slots stay in
                    // insertion order, which is ascending seq).
                    let at = bucket.partition_point(|x| x.aslot <= e.aslot);
                    bucket.insert(at, e);
                    self.band_bits[band / 64] |= 1 << (band % 64);
                }
            }
        }
        self.slots[id.slot as usize].task = Some(task);
    }

    fn index_remove(&mut self, id: TaskId, seq: u64) {
        let Some(task) = self.slots[id.slot as usize].task.take() else {
            return;
        };
        match self.policy {
            Policy::Fcfs => {
                self.fcfs
                    .remove(&(task.enqueued().as_nanos(), seq, id.slot));
            }
            Policy::Look | Policy::Rlook => {
                let cyl = task.candidates()[0].cylinder;
                let enq = task.enqueued().as_nanos();
                if let Some(set) = self.sweep.get_mut(&cyl) {
                    set.remove(&(enq, seq, id.slot));
                    if set.is_empty() {
                        self.sweep.remove(&cyl);
                    }
                }
            }
            Policy::Satf | Policy::Rsatf => {
                let limit = if self.policy.replica_aware() {
                    task.candidates().len()
                } else {
                    1
                };
                for t in task.candidates().iter().take(limit) {
                    let band = ((t.cylinder.min(self.cylinders - 1)) / BAND_CYLS) as usize;
                    let bucket = &mut self.bands[band];
                    if let Some(at) = bucket
                        .iter()
                        .position(|x| x.seq == seq && x.slot == id.slot)
                    {
                        bucket.remove(at);
                    }
                    if bucket.is_empty() {
                        self.band_bits[band / 64] &= !(1 << (band % 64));
                    }
                }
            }
        }
        self.slots[id.slot as usize].task = Some(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_disk::{DiskParams, PositionKnowledge, Target, TimingPath};
    use mimd_sim::SimRng;

    #[derive(Debug, Clone)]
    struct Entry {
        candidates: Vec<Target>,
        write: bool,
        at: SimTime,
    }

    impl Schedulable for Entry {
        fn candidates(&self) -> &[Target] {
            &self.candidates
        }
        fn is_write(&self) -> bool {
            self.write
        }
        fn enqueued(&self) -> SimTime {
            self.at
        }
    }

    fn disk() -> SimDisk {
        SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Detailed,
            PositionKnowledge::Perfect,
            7,
        )
        .unwrap()
    }

    fn random_entry(rng: &mut SimRng, cyls: u32, max_at_us: u64) -> Entry {
        let dr = 1 + rng.below(4) as usize;
        Entry {
            candidates: (0..dr)
                .map(|k| Target {
                    cylinder: rng.below(cyls as u64) as u32,
                    surface: k as u32,
                    angle: rng.unit(),
                    sectors: 8,
                })
                .collect(),
            write: rng.below(4) == 0,
            at: SimTime::from_micros(rng.below(max_at_us.max(1))),
        }
    }

    fn check_index(dq: &DriveQueue<Entry>, mirror: &[Entry], ids: &[TaskId]) {
        if !matches!(dq.policy, Policy::Satf | Policy::Rsatf) || dq.bands.is_empty() {
            return;
        }
        let mut want: Vec<(usize, u64, u32, u8)> = Vec::new(); // (band, seq, slot, cand)
        for (i, e) in mirror.iter().enumerate() {
            let id = ids[i];
            let seq = dq.slots[id.slot as usize].seq;
            let limit = if dq.policy.replica_aware() {
                e.candidates.len()
            } else {
                1
            };
            for (c, t) in e.candidates.iter().take(limit).enumerate() {
                let band = ((t.cylinder.min(dq.cylinders - 1)) / BAND_CYLS) as usize;
                want.push((band, seq, id.slot, c as u8));
            }
        }
        let mut got: Vec<(usize, u64, u32, u8)> = Vec::new();
        for (b, bucket) in dq.bands.iter().enumerate() {
            assert_eq!(
                dq.band_occupied(b),
                !bucket.is_empty(),
                "band bit desync at {b}"
            );
            for e in bucket {
                got.push((b, e.seq, e.slot, e.cand));
            }
        }
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want, "band index desynced");
    }

    /// The load-bearing equivalence property: on every randomized queue —
    /// built through interleaved inserts, removals, and in-place updates —
    /// the indexed pick must equal the windowed scan of `sched::pick`:
    /// same entry, same replica, same sweep-direction side effect.
    #[test]
    fn indexed_pick_matches_scan_on_randomized_queues() {
        let cyls = DiskParams::st39133lwv().total_cylinders();
        let policies = [
            Policy::Fcfs,
            Policy::Look,
            Policy::Satf,
            Policy::Rlook,
            Policy::Rsatf,
        ];
        mimd_sim::check::check_cases("indexed pick equals scan", 40, |case, rng| {
            let mut d = disk();
            // Move the head somewhere interesting.
            let park = Target {
                cylinder: rng.below(cyls as u64) as u32,
                surface: 0,
                angle: rng.unit(),
                sectors: 8,
            };
            let _ = d.begin(SimTime::ZERO, &park, false);
            let now = d.busy_until();
            let slack = if case % 3 == 0 {
                SimDuration::from_micros(rng.below(2_000))
            } else {
                SimDuration::ZERO
            };
            // A small window sometimes, to exercise the fallback boundary.
            let window = if case % 4 == 0 { 8 } else { 128 };
            for policy in policies {
                let mut dq: DriveQueue<Entry> = DriveQueue::new(policy, cyls);
                let mut mirror: Vec<Entry> = Vec::new();
                let mut ids: Vec<TaskId> = Vec::new();
                let upward = rng.below(2) == 0;
                let mut look_dq = LookState::default();
                let mut look_scan = LookState::default();
                look_dq.upward = upward;
                look_scan.upward = upward;
                for step in 0..60 {
                    match rng.below(10) {
                        // Mostly inserts so queues get deep.
                        0..=5 => {
                            let e = random_entry(rng, cyls, 1 + step * 10);
                            ids.push(dq.insert(e.clone()));
                            mirror.push(e);
                            check_index(&dq, &mirror, &ids);
                        }
                        6 => {
                            if !mirror.is_empty() {
                                let at = rng.below(mirror.len() as u64) as usize;
                                let got = dq.remove(ids.remove(at));
                                mirror.remove(at);
                                assert!(got.is_some(), "live id must remove");
                                check_index(&dq, &mirror, &ids);
                            }
                        }
                        7 => {
                            // Coalesce-style in-place update: new targets and
                            // enqueued time, same arrival position.
                            if !mirror.is_empty() {
                                let at = rng.below(mirror.len() as u64) as usize;
                                let e = random_entry(rng, cyls, 1 + step * 10);
                                let ok = dq.replace_with(ids[at], |t| {
                                    t.candidates = e.candidates.clone();
                                    t.write = e.write;
                                    t.at = e.at;
                                });
                                assert!(ok);
                                mirror[at] = e;
                                check_index(&dq, &mirror, &ids);
                            }
                        }
                        _ => {
                            let w = window.min(mirror.len());
                            let want =
                                sched::pick(policy, &d, now, &mirror[..w], &mut look_scan, slack)
                                    .map(|p| (ids[p.queue_index], p.candidate));
                            let got = dq.pick(&d, now, &mut look_dq, slack, window);
                            assert_eq!(
                                got,
                                want,
                                "policy {policy}, step {step}, depth {}",
                                mirror.len()
                            );
                            assert_eq!(look_dq.upward, look_scan.upward, "sweep diverged");
                        }
                    }
                }
                // Drain by repeated pick+remove: full agreement to empty.
                loop {
                    let w = window.min(mirror.len());
                    let want = sched::pick(policy, &d, now, &mirror[..w], &mut look_scan, slack)
                        .map(|p| (p.queue_index, p.candidate));
                    let got = dq.pick(&d, now, &mut look_dq, slack, window);
                    match (got, want) {
                        (None, None) => break,
                        (Some((id, c)), Some((qi, wc))) => {
                            assert_eq!((id, c), (ids[qi], wc), "drain diverged ({policy})");
                            assert!(dq.remove(id).is_some());
                            ids.remove(qi);
                            mirror.remove(qi);
                        }
                        (g, w) => panic!("presence diverged ({policy}): {g:?} vs {w:?}"),
                    }
                }
                assert!(dq.is_empty());
            }
        });
    }

    /// Read-ahead drives must take the fallback path (a potential buffer
    /// hit has bound 0 at any distance) and still agree with the scan.
    #[test]
    fn read_ahead_falls_back_and_matches() {
        let cyls = DiskParams::st39133lwv().total_cylinders();
        let mut d = disk();
        d.set_read_ahead(true);
        let warm = Target {
            cylinder: 1_234,
            surface: 2,
            angle: 0.3,
            sectors: 8,
        };
        let _ = d.begin(SimTime::ZERO, &warm, false);
        let now = d.busy_until();
        let mut rng = SimRng::seed_from(0xAB5);
        for policy in [Policy::Satf, Policy::Rsatf] {
            let mut dq: DriveQueue<Entry> = DriveQueue::new(policy, cyls);
            let mut mirror = Vec::new();
            let mut ids = Vec::new();
            for _ in 0..24 {
                let mut e = random_entry(&mut rng, cyls, 50);
                // Make some candidates buffered-track hits.
                if rng.below(3) == 0 {
                    e.candidates[0] = warm;
                    e.write = false;
                }
                ids.push(dq.insert(e.clone()));
                mirror.push(e);
            }
            let mut look_a = LookState::default();
            let mut look_b = LookState::default();
            let want = sched::pick(policy, &d, now, &mirror, &mut look_b, SimDuration::ZERO)
                .map(|p| (ids[p.queue_index], p.candidate));
            let got = dq.pick(&d, now, &mut look_a, SimDuration::ZERO, 128);
            assert_eq!(got, want, "{policy}");
        }
    }

    /// A spindle-phase change must invalidate every memoised `sched_phase`:
    /// pick once (warming the per-candidate phase memos), shift the phase
    /// offset, then require the next indexed pick to agree with a fresh
    /// scan of the same queue. Without the epoch stamp the warm memos
    /// would survive `set_phase_offset` and the rotational prune (and the
    /// candidate costs themselves) would run on phases from the old
    /// spindle alignment.
    #[test]
    fn phase_memo_never_survives_spindle_phase_change() {
        let cyls = DiskParams::st39133lwv().total_cylinders();
        mimd_sim::check::check_cases("phase memo respects epoch", 24, |_case, rng| {
            for policy in [Policy::Satf, Policy::Rsatf] {
                let mut d = disk();
                let park = Target {
                    cylinder: rng.below(cyls as u64) as u32,
                    surface: 0,
                    angle: rng.unit(),
                    sectors: 8,
                };
                let _ = d.begin(SimTime::ZERO, &park, false);
                let now = d.busy_until();
                let mut dq: DriveQueue<Entry> = DriveQueue::new(policy, cyls);
                let mut mirror = Vec::new();
                let mut ids = Vec::new();
                for _ in 0..32 {
                    let e = random_entry(rng, cyls, 50);
                    ids.push(dq.insert(e.clone()));
                    mirror.push(e);
                }
                let mut look_a = LookState::default();
                let mut look_b = LookState::default();
                // Warm the memos under the initial spindle alignment.
                let _ = dq.pick(&d, now, &mut look_a, SimDuration::ZERO, 128);
                // Re-align the spindle; every memoised phase is now wrong.
                d.set_phase_offset(0.125 + rng.unit() * 0.75);
                let want = sched::pick(policy, &d, now, &mirror, &mut look_b, SimDuration::ZERO)
                    .map(|p| (ids[p.queue_index], p.candidate));
                let got = dq.pick(&d, now, &mut look_a, SimDuration::ZERO, 128);
                assert_eq!(got, want, "{policy}: stale phase memo changed the pick");
            }
        });
    }

    #[test]
    fn stale_ids_are_inert() {
        let mut dq: DriveQueue<Entry> = DriveQueue::new(Policy::Rsatf, 100);
        let e = Entry {
            candidates: vec![Target {
                cylinder: 5,
                surface: 0,
                angle: 0.5,
                sectors: 8,
            }],
            write: false,
            at: SimTime::ZERO,
        };
        let id = dq.insert(e.clone());
        assert!(dq.remove(id).is_some());
        // Double-remove is a no-op, and a recycled slot gets a fresh gen.
        assert!(dq.remove(id).is_none());
        assert!(!dq.replace_with(id, |_| {}));
        let id2 = dq.insert(e);
        assert_eq!(id2.slot, id.slot, "slot is recycled");
        assert_ne!(id2.gen, id.gen, "generation advances");
        assert!(dq.get(id).is_none());
        assert!(dq.get(id2).is_some());
    }

    #[test]
    fn arrival_order_survives_middle_removals() {
        let mut dq: DriveQueue<Entry> = DriveQueue::new(Policy::Fcfs, 100);
        let mk = |at: u64| Entry {
            candidates: vec![Target {
                cylinder: 1,
                surface: 0,
                angle: 0.1,
                sectors: 8,
            }],
            write: false,
            at: SimTime::from_micros(at),
        };
        let a = dq.insert(mk(3));
        let b = dq.insert(mk(1));
        let c = dq.insert(mk(2));
        assert_eq!(dq.ids(), &[a, b, c]);
        assert!(dq.remove(b).is_some());
        assert_eq!(dq.ids(), &[a, c]);
        let d2 = dq.insert(mk(0));
        assert_eq!(dq.ids(), &[a, c, d2]);
        assert_eq!(dq.len(), 3);
    }
}
