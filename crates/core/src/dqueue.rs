//! An indexed drive queue: slab-allocated pending requests with incremental
//! per-policy indexes, so a scheduling pick costs time proportional to the
//! work it inspects rather than the queue depth.
//!
//! [`crate::sched::pick`] is a scan: every decision touches every queued
//! entry (bounding, heaping), even though arrivals and completions change
//! the queue by one entry at a time. [`DriveQueue`] moves that work to the
//! mutation sites:
//!
//! - Entries live in a **slab** with stable, generation-tagged
//!   [`TaskId`]s; queues and indexes store ids, never moved structs.
//! - **SATF/RSATF** maintain a *rotational band index* in
//!   struct-of-arrays form: every candidate (entry × replica) lives in
//!   the per-cylinder-band [`BandLanes`] — flat, parallel columns of
//!   arrival seq, packed identity key (slot, cylinder, surface, replica,
//!   write flag), memoised phase, and offset-free base angle. A pick
//!   walks occupied bands outward from the arm, skips any band whose
//!   seek lower bound exceeds the incumbent's cost (one integer compare
//!   against the inverse seek curve), and gathers surviving lanes into
//!   scratch columns flushed through [`SimDisk::sched_cost_batch`] a
//!   chunk at a time, folding each chunk into a scalar
//!   `(cost, seq, candidate)` argmin.
//! - **LOOK/RLOOK** maintain a sweep index (`BTreeMap` keyed by cylinder):
//!   the next in-direction cylinder is one ordered lookup.
//! - **FCFS** maintains an arrival-ordered set: the oldest entry is the
//!   first element.
//!
//! The phase column memoises [`SimDisk::sched_phase`] per candidate at
//! insert time. The phase folds in the disk's *mutable* spindle-phase
//! offset, so each band carries an epoch stamp ([`SimDisk::phase_epoch`]);
//! a pick repairs a stale band in place from the offset-free base-angle
//! column before costing its lanes — no interior mutability, no
//! per-evaluation re-quantisation.
//!
//! # Exactness
//!
//! Each indexed pick returns *exactly* the entry and replica that
//! [`crate::sched::pick`] would return on the queue's arrival-order
//! window prefix:
//!
//! - Arrival order is tracked explicitly (`order`, always sorted by a
//!   per-queue monotone sequence number), so the scan's positional
//!   tie-break `(cost, queue index, candidate)` is reproduced as
//!   `(cost, seq, candidate)`.
//! - The winner is the pure `(cost, seq, candidate)` argmin over every
//!   candidate evaluated, which makes the band visit order, the gather
//!   order *within* a band, and the chunk-flush boundaries irrelevant to
//!   the result — only to how fast the incumbent tightens. Costing whole
//!   bands therefore cannot change the winner: extra candidates in a
//!   visited band cost at least the band's seek lower bound, and a band
//!   is only skipped when that bound exceeds the current incumbent's
//!   cost (which never rises), so every skipped candidate would have
//!   lost outright.
//! - Queues deeper than the scheduling window are masked, not rescanned:
//!   `order` is seq-sorted, so the scan's window prefix is exactly the
//!   lanes with seq below the first out-of-window entry's seq, and the
//!   argmin ignores masked lanes. The evaluated set still bounds every
//!   *eligible* candidate (band bounds hold for all members), so the
//!   windowed argmin is exact too.
//!
//! One situation falls outside the band index's guarantees, and
//! [`DriveQueue::pick`] detects it and falls back to the windowed scan:
//! drives with track read-ahead enabled (a potential buffer hit has
//! positioning bound 0 regardless of seek distance, which breaks
//! band-bound monotonicity). LOOK and FCFS picks on queues deeper than
//! the window also fall back (their indexes span the whole queue).
//!
//! The equivalence tests at the bottom drive randomized queues through
//! both implementations and require identical picks — entry, replica, and
//! sweep-direction side effects — across every policy.

use std::collections::{BTreeMap, BTreeSet};

use mimd_disk::{mod1, PhaseFloorRuler, SimDisk};
use mimd_sim::{SimDuration, SimTime};

use crate::sched::{self, LookState, Policy, Schedulable};

/// Cylinders per band of the SATF band index. Wide bands keep the walk's
/// per-band fixed cost (cursor advance, seek bound, repair check) off the
/// critical path: at typical queue depths a band holds a kernel-sized run
/// of lanes, and the coarser distance prune costs at most one extra band
/// visit per side.
const BAND_CYLS: u32 = 64;

/// Slack added to the incumbent's cost before the rotational lower-bound
/// prune fires. The bound `seek_bound_ns + first-hit wait` is computed in
/// f64 phase space while the kernel's cost is integer nanoseconds; the slop
/// absorbs that rounding so a lane is only skipped when it is provably more
/// than a microsecond worse than the incumbent — equal-cost lanes always
/// reach the argmin and the legacy tie order is preserved.
const ROT_PRUNE_SLOP_NS: u64 = 1_000;

/// Below this many total lanes a SATF pick skips the outward band walk and
/// costs everything in one gather + one kernel flush. The walk's prunes
/// only pay for themselves once there are enough lanes to *skip*; on a
/// shallow queue the per-band bookkeeping (cursor scans, bound compares,
/// per-band flushes) costs more than just costing every lane. Same argmin
/// over the same eligible lanes either way — this is a route choice, not a
/// policy change.
const SMALL_LANES: usize = 24;

/// A stable handle to a slab-resident task.
///
/// The generation tag makes stale handles harmless: removing a task and
/// reusing its slot bumps the generation, so an old id no longer matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaskId {
    slot: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot<S> {
    task: Option<S>,
    gen: u32,
    seq: u64,
}

/// Packed per-lane identity: `slot` (28 bits) | `cyl` (20 bits) |
/// `surface` (8 bits) | `cand` (7 bits) | `write` (1 bit), most- to
/// least-significant. One u64 load per lane covers everything the gather
/// needs besides `seq` and `phase`, which keeps a band visit at three
/// column streams instead of eight.
#[inline]
fn pack_key(slot: u32, cyl: u32, surface: u32, cand: u8, write: bool) -> u64 {
    debug_assert!(slot < 1 << 28 && cyl < 1 << 20 && surface < 1 << 8 && cand < 1 << 7);
    (slot as u64) << 36
        | (cyl as u64) << 16
        | (surface as u64) << 8
        | (cand as u64) << 1
        | u64::from(write)
}

#[inline]
fn key_slot(k: u64) -> u32 {
    (k >> 36) as u32
}

#[inline]
fn key_cyl(k: u64) -> u32 {
    (k >> 16) as u32 & 0xF_FFFF
}

#[inline]
fn key_surface(k: u64) -> u32 {
    (k >> 8) as u32 & 0xFF
}

#[inline]
fn key_cand(k: u64) -> u8 {
    (k >> 1) as u8 & 0x7F
}

#[inline]
fn key_write(k: u64) -> u8 {
    k as u8 & 1
}

/// One cylinder band of the SATF index in struct-of-arrays form: lane `i`
/// across every column describes one candidate (entry × replica). The
/// layout feeds the pick's gather loop directly — eligible lanes stream
/// into the scratch columns for [`SimDisk::sched_cost_batch`].
#[derive(Debug, Default)]
struct BandLanes {
    /// Arrival sequence number (the scan's queue-position tie-break key).
    seq: Vec<u64>,
    /// Packed lane identity — see [`pack_key`].
    key: Vec<u64>,
    /// Memoised effective target phase ([`SimDisk::sched_phase`]), filled
    /// at insert. Phases fold in the disk's mutable spindle-phase offset,
    /// so they are valid only while `epoch` matches
    /// [`SimDisk::phase_epoch`].
    phase: Vec<f64>,
    /// Offset-free quantised target angle ([`SimDisk::sched_base_angle`]).
    /// Geometry-pure and immutable, so stale phases repair from it without
    /// touching the slab. Cold: only read when `epoch` is stale.
    base_angle: Vec<f64>,
    /// [`SimDisk::phase_epoch`] when the band's phases were last known
    /// fresh. One stamp covers the whole band: re-folding a phase from its
    /// base angle is idempotent, so a stale stamp triggers one whole-band
    /// repair pass and a fresh one is a single compare. A lane pushed into
    /// a stale band is re-folded redundantly on the next repair, which
    /// reproduces the same value.
    epoch: u32,
}

impl BandLanes {
    fn len(&self) -> usize {
        self.seq.len()
    }

    fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    fn push(&mut self, seq: u64, key: u64, phase: f64, base_angle: f64, epoch: u32) {
        if self.seq.is_empty() {
            self.epoch = epoch;
        }
        self.seq.push(seq);
        self.key.push(key);
        self.phase.push(phase);
        self.base_angle.push(base_angle);
    }

    fn swap_remove(&mut self, i: usize) {
        self.seq.swap_remove(i);
        self.key.swap_remove(i);
        self.phase.swap_remove(i);
        self.base_angle.swap_remove(i);
    }

    fn clear(&mut self) {
        self.seq.clear();
        self.key.clear();
        self.phase.clear();
        self.base_angle.clear();
    }
}

/// Reused per-pick gather/output lanes for the batch kernel. A SATF pick
/// copies the eligible lanes into these contiguous columns and flushes
/// them through [`SimDisk::sched_cost_batch`] a chunk at a time, so the
/// kernel's fixed cost is amortised per chunk. Plain scratch: overwritten
/// every pick, never read across picks.
#[derive(Debug, Default)]
struct PickScratch {
    seq: Vec<u64>,
    key: Vec<u64>,
    write: Vec<u8>,
    dist: Vec<u32>,
    surface: Vec<u32>,
    phase: Vec<f64>,
    pos: Vec<u64>,
    rot: Vec<u64>,
}

impl PickScratch {
    fn clear(&mut self) {
        self.seq.clear();
        self.key.clear();
        self.write.clear();
        self.dist.clear();
        self.surface.clear();
        self.phase.clear();
    }

    /// Costs every gathered lane in one batched pass, folds them into the
    /// incumbent, and resets the gather columns. Returns whether the
    /// incumbent's *cost* strictly improved (tie-break-only changes don't
    /// move the prune threshold).
    fn flush(
        &mut self,
        disk: &SimDisk,
        now: SimTime,
        slack_ns: u64,
        best: &mut Option<(u64, u64, u8, u32)>,
    ) -> bool {
        let n = self.seq.len();
        if n == 0 {
            return false;
        }
        if self.pos.len() < n {
            self.pos.resize(n, 0);
            self.rot.resize(n, 0);
        }
        disk.sched_cost_batch(
            now,
            &self.dist,
            &self.surface,
            &self.write,
            &self.phase,
            &mut self.pos[..n],
            &mut self.rot[..n],
        );
        let rot_penalty = disk.rotation_ns();
        let mut improved = false;
        for i in 0..n {
            let cost = self.pos[i] + u64::from(self.rot[i] < slack_ns) * rot_penalty;
            let cand = key_cand(self.key[i]);
            let wins = match *best {
                None => true,
                Some((bcost, bseq, bcand, _)) => {
                    cost < bcost || (cost == bcost && (self.seq[i], cand) < (bseq, bcand))
                }
            };
            if wins {
                improved |= best.is_none_or(|(bcost, ..)| cost < bcost);
                *best = Some((cost, self.seq[i], cand, key_slot(self.key[i])));
            }
        }
        self.clear();
        improved
    }
}

/// A drive queue with incremental per-policy indexes. See the module docs.
#[derive(Debug)]
pub struct DriveQueue<S: Schedulable> {
    policy: Policy,
    slots: Vec<Slot<S>>,
    free: Vec<u32>,
    /// Live ids in arrival order (ascending `seq`).
    order: Vec<TaskId>,
    next_seq: u64,
    /// SATF/RSATF: per-band candidate lanes, grown on demand to cover the
    /// highest cylinder seen.
    bands: Vec<BandLanes>,
    /// One bit per band: set iff the band's lanes are non-empty.
    band_bits: Vec<u64>,
    /// Total lanes across all bands (sum of candidate counts of queued
    /// SATF/RSATF tasks); gates the shallow-queue fast path.
    lane_count: usize,
    /// Batch-kernel output lanes, reused across picks.
    scratch: PickScratch,
    /// LOOK/RLOOK: cylinder → (enqueued ns, seq, slot) of primary targets.
    sweep: BTreeMap<u32, BTreeSet<(u64, u64, u32)>>,
    /// FCFS: (enqueued ns, seq, slot), oldest first.
    fcfs: BTreeSet<(u64, u64, u32)>,
}

impl<S: Schedulable> DriveQueue<S> {
    /// Creates an empty queue indexed for `policy`.
    pub fn new(policy: Policy) -> Self {
        DriveQueue {
            policy,
            slots: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            next_seq: 0,
            bands: Vec::new(),
            band_bits: Vec::new(),
            lane_count: 0,
            scratch: PickScratch::default(),
            sweep: BTreeMap::new(),
            fcfs: BTreeSet::new(),
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The task behind `id`, if it is still queued.
    pub fn get(&self, id: TaskId) -> Option<&S> {
        let s = self.slots.get(id.slot as usize)?;
        if s.gen != id.gen {
            return None;
        }
        s.task.as_ref()
    }

    /// Live ids in arrival order.
    pub fn ids(&self) -> &[TaskId] {
        &self.order
    }

    /// Drops every queued task, invalidating all outstanding ids while
    /// keeping the queue's allocations for reuse.
    pub fn clear(&mut self) {
        for id in self.order.drain(..) {
            let s = &mut self.slots[id.slot as usize];
            s.task = None;
            s.gen = s.gen.wrapping_add(1);
            self.free.push(id.slot);
        }
        for lanes in &mut self.bands {
            lanes.clear();
        }
        self.band_bits.fill(0);
        self.sweep.clear();
        self.fcfs.clear();
    }

    /// Inserts a task at the back of the arrival order.
    ///
    /// `disk` is the drive this queue schedules for: the SATF index
    /// memoises each candidate's effective target phase (and its
    /// offset-free base angle) at insert time, so picks never re-quantise.
    pub fn insert(&mut self, disk: &SimDisk, task: S) -> TaskId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    task: None,
                    gen: 0,
                    seq: 0,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let sref = &mut self.slots[slot as usize];
        sref.task = Some(task);
        sref.seq = seq;
        let id = TaskId {
            slot,
            gen: sref.gen,
        };
        self.order.push(id);
        self.index_insert(disk, id, seq);
        id
    }

    /// Removes and returns the task behind `id`; `None` if the id is stale.
    pub fn remove(&mut self, id: TaskId) -> Option<S> {
        let s = self.slots.get(id.slot as usize)?;
        if s.gen != id.gen || s.task.is_none() {
            return None;
        }
        let seq = s.seq;
        mimd_sim::sim_invariant!(
            self.order.len() < 2
                || self.order.windows(2).all(
                    |w| self.slots[w[0].slot as usize].seq < self.slots[w[1].slot as usize].seq
                ),
            "drive-queue arrival order out of seq order"
        );
        // `order` is sorted by seq, so the position is a binary search.
        let pos = self
            .order
            .binary_search_by_key(&seq, |i| self.slots[i.slot as usize].seq)
            .ok()?;
        self.index_remove(id, seq);
        self.order.remove(pos);
        let sref = &mut self.slots[id.slot as usize];
        sref.gen = sref.gen.wrapping_add(1);
        self.free.push(id.slot);
        sref.task.take()
    }

    /// Mutates the task behind `id` in place, keeping its arrival position,
    /// and re-indexes it (targets and enqueued time may have changed).
    /// Returns whether the id was live.
    pub fn replace_with(&mut self, disk: &SimDisk, id: TaskId, f: impl FnOnce(&mut S)) -> bool {
        let Some(s) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if s.gen != id.gen || s.task.is_none() {
            return false;
        }
        let seq = s.seq;
        self.index_remove(id, seq);
        if let Some(task) = self.slots[id.slot as usize].task.as_mut() {
            f(task);
        }
        self.index_insert(disk, id, seq);
        true
    }

    /// Picks the next task for an idle disk exactly as
    /// [`crate::sched::pick`] would on the arrival-order prefix of at most
    /// `window` entries, returning the winning id and replica index.
    ///
    /// SATF/RSATF use the lane index at any depth (entries past the
    /// window are masked out of the argmin by sequence number) unless the
    /// drive's read-ahead buffer is on, which breaks the index's bound
    /// monotonicity and falls back to the windowed scan. LOOK and FCFS use
    /// their indexes when the whole queue fits in the window and fall back
    /// otherwise.
    ///
    /// Takes `&mut self` only for lane repair and kernel scratch; the
    /// logical queue state is unchanged.
    pub fn pick(
        &mut self,
        disk: &SimDisk,
        now: SimTime,
        look: &mut LookState,
        slack: SimDuration,
        window: usize,
    ) -> Option<(TaskId, usize)> {
        if self.order.is_empty() {
            return None;
        }
        match self.policy {
            Policy::Satf | Policy::Rsatf => {
                if disk.read_ahead_enabled() {
                    self.pick_scan(disk, now, look, slack, window)
                } else {
                    self.pick_satf(disk, now, slack, window)
                }
            }
            _ if self.order.len() > window => self.pick_scan(disk, now, look, slack, window),
            Policy::Fcfs => self.pick_fcfs(disk, now, slack),
            Policy::Look | Policy::Rlook => self.pick_look(disk, now, look, slack),
        }
    }

    /// The fallback: materialise the window prefix and run the scan.
    fn pick_scan(
        &self,
        disk: &SimDisk,
        now: SimTime,
        look: &mut LookState,
        slack: SimDuration,
        window: usize,
    ) -> Option<(TaskId, usize)> {
        let window = window.min(self.order.len());
        let refs: Vec<&S> = self.order[..window]
            .iter()
            .map(|&id| {
                self.slots[id.slot as usize]
                    .task
                    .as_ref()
                    .expect("order holds live ids") // simlint: allow(panic) — queue invariant
            })
            .collect();
        let p = sched::pick(self.policy, disk, now, &refs, look, slack)?;
        Some((self.order[p.queue_index], p.candidate))
    }

    fn pick_fcfs(
        &self,
        disk: &SimDisk,
        now: SimTime,
        slack: SimDuration,
    ) -> Option<(TaskId, usize)> {
        let &(_, seq, slot) = self.fcfs.iter().next()?;
        let id = self.id_at(slot, seq)?;
        let task = self.get(id)?;
        Some((id, sched::best_candidate(disk, now, task, true, slack)))
    }

    fn pick_look(
        &self,
        disk: &SimDisk,
        now: SimTime,
        look: &mut LookState,
        slack: SimDuration,
    ) -> Option<(TaskId, usize)> {
        let head = disk.arm_cylinder();
        let aware = self.policy.replica_aware();
        // One flip allowed, exactly like the scan's end-of-stroke turn.
        for _ in 0..2 {
            let hit = if look.upward {
                self.sweep.range(head..).next()
            } else {
                self.sweep.range(..=head).next_back()
            };
            if let Some((_, set)) = hit {
                let &(_, seq, slot) = set.iter().next()?;
                let id = self.id_at(slot, seq)?;
                let task = self.get(id)?;
                return Some((id, sched::best_candidate(disk, now, task, aware, slack)));
            }
            look.upward = !look.upward;
        }
        None
    }

    fn pick_satf(
        &mut self,
        disk: &SimDisk,
        now: SimTime,
        slack: SimDuration,
        window: usize,
    ) -> Option<(TaskId, usize)> {
        // The scan only sees the arrival-order window prefix. `order` is
        // seq-sorted, so that prefix is exactly the lanes with seq below
        // the first out-of-window entry's seq; lanes at or past the cutoff
        // stay in the index but are masked out of the argmin.
        let cutoff = if self.order.len() > window {
            self.slots[self.order[window].slot as usize].seq
        } else {
            u64::MAX
        };
        let arm = disk.arm_cylinder();
        let arm_band = (arm / BAND_CYLS) as usize;
        let nbands = self.bands.len();
        let slack_ns = slack.as_nanos();
        let epoch = disk.phase_epoch();
        // Hoists the now-dependent part of `arrival_phase_floor`: the walk
        // below prunes each lane against the earliest spindle phase it
        // could possibly be served at, and the ruler makes that floor one
        // fused multiply per lane instead of a full recomputation.
        let period = disk.rotation_ns() as f64;
        let ruler = disk.phase_floor_ruler(now);
        let mut best: Option<(u64, u64, u8, u32)> = None; // (cost, seq, cand, slot)
        if self.lane_count <= SMALL_LANES {
            self.scratch.clear();
            // Jump straight between occupied bands via the bitmap words —
            // on a shallow queue most bands are empty and a linear
            // occupancy scan would cost more than the gather itself.
            for w in 0..self.band_bits.len() {
                let mut bits = self.band_bits[w];
                while bits != 0 {
                    let band = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.repair_band(disk, epoch, band);
                    self.gather_band(disk, &ruler, period, arm, band, cutoff, None);
                }
            }
            self.scratch.flush(disk, now, slack_ns, &mut best);
            let (_, seq, cand, slot) = best?;
            let id = self.id_at(slot, seq)?;
            return Some((id, cand as usize));
        }
        // `maxd` is the prune threshold in distance space: the largest
        // tabulated arm distance whose seek fits inside the incumbent's
        // cost. Skipping a band with `band_min_dist > maxd` is the same
        // test as `seek_bound_ns(band_min_dist) > incumbent` (the seek
        // curve is weakly monotone), but per band it is one integer
        // compare. Recomputed only when the incumbent's cost improves.
        let mut maxd = u32::MAX;
        self.scratch.clear();
        // Arm band first, flushed alone: it holds the nearest candidates,
        // so an early incumbent makes the distance prune bite immediately.
        if arm_band < nbands && self.band_occupied(arm_band) {
            self.repair_band(disk, epoch, arm_band);
            self.gather_band(disk, &ruler, period, arm, arm_band, cutoff, None);
            if self.scratch.flush(disk, now, slack_ns, &mut best) {
                maxd = disk.max_seek_dist_within_ns(best.map_or(u64::MAX, |(c, ..)| c));
            }
        }
        // Walk outward, nearer cursor first; ties go upward. Band and
        // flush order are perf-only — the winner is a pure
        // (cost, seq, cand) argmin over everything flushed.
        let mut up = if arm_band < nbands {
            self.next_band_at_or_above(arm_band + 1)
        } else {
            None
        };
        let mut down = if arm_band > 0 {
            self.next_band_at_or_below((arm_band - 1).min(nbands.saturating_sub(1)))
        } else {
            None
        };
        while up.is_some() || down.is_some() {
            let du = up.map_or(u32::MAX, |b| self.band_min_dist(b, arm));
            let dd = down.map_or(u32::MAX, |b| self.band_min_dist(b, arm));
            let is_up = du <= dd;
            let (band, dist) = if is_up {
                (up.unwrap_or_default(), du)
            } else {
                (down.unwrap_or_default(), dd)
            };
            if dist > maxd {
                // Every remaining band on this side is at least as far, and
                // the other cursor (if live) is farther still: done.
                break;
            }
            self.repair_band(disk, epoch, band);
            let budget = best.map(|(c, ..)| c.saturating_add(ROT_PRUNE_SLOP_NS));
            self.gather_band(disk, &ruler, period, arm, band, cutoff, budget);
            // Flush whatever the band contributed right away: the handful
            // of lanes that survive the rotational screen are exactly the
            // ones that can move the incumbent, and folding them in now is
            // what keeps `maxd` and the prune budget tight for the next
            // band. Letting them sit until a large chunk accumulates
            // (tempting, to amortise the kernel's fixed cost) leaves both
            // prunes stale and the walk visits far more bands than it
            // saves in kernel overhead.
            if self.scratch.flush(disk, now, slack_ns, &mut best) {
                maxd = disk.max_seek_dist_within_ns(best.map_or(u64::MAX, |(c, ..)| c));
            }
            if is_up {
                up = if band + 1 < nbands {
                    self.next_band_at_or_above(band + 1)
                } else {
                    None
                };
            } else {
                down = if band > 0 {
                    self.next_band_at_or_below(band - 1)
                } else {
                    None
                };
            }
        }
        self.scratch.flush(disk, now, slack_ns, &mut best);
        let (_, seq, cand, slot) = best?;
        let id = self.id_at(slot, seq)?;
        Some((id, cand as usize))
    }

    /// Repairs a band stamped under an older spindle-phase epoch: re-folds
    /// the current offset into every lane's immutable base angle. A no-op
    /// (one compare) unless `set_phase_offset` ran since the band's phases
    /// were last known fresh. Re-folding is idempotent, so repairing lanes
    /// that were already fresh reproduces their phases exactly.
    fn repair_band(&mut self, disk: &SimDisk, epoch: u32, band: usize) {
        let lanes = &mut self.bands[band];
        if lanes.epoch == epoch {
            return;
        }
        for i in 0..lanes.len() {
            lanes.phase[i] = disk.phase_of_angle(lanes.base_angle[i]);
        }
        lanes.epoch = epoch;
    }

    /// Appends a band's *eligible* lanes — seq below `cutoff` (window
    /// masking) — to the pick scratch. Gather-time filtering means masked
    /// lanes are never costed and the flush argmin needs no per-lane
    /// window check.
    ///
    /// When `budget` carries the incumbent's cost (plus
    /// [`ROT_PRUNE_SLOP_NS`]), each lane is also screened against a
    /// rotational lower bound before it is copied: the arm cannot reach the
    /// lane's cylinder before `seek_bound_ns(dist)`, and from that instant
    /// the head must still wait for the lane's angle to come around, so
    /// `bound + first_hit_wait` underestimates the true positioning time.
    /// Lanes whose underestimate already exceeds the budget can never win
    /// the argmin and are skipped without being costed. The first-hit wait
    /// is monotone in the arrival instant, so using the *earliest* arrival
    /// (the seek bound) keeps the bound sound.
    #[allow(clippy::too_many_arguments)]
    fn gather_band(
        &mut self,
        disk: &SimDisk,
        ruler: &PhaseFloorRuler,
        period: f64,
        arm: u32,
        band: usize,
        cutoff: u64,
        budget: Option<u64>,
    ) {
        let lanes = &self.bands[band];
        let s = &mut self.scratch;
        if cutoff == u64::MAX && budget.is_none() {
            // Whole band eligible: straight column copies.
            s.seq.extend_from_slice(&lanes.seq);
            s.key.extend_from_slice(&lanes.key);
            s.phase.extend_from_slice(&lanes.phase);
            s.write.extend(lanes.key.iter().map(|&k| key_write(k)));
            s.surface.extend(lanes.key.iter().map(|&k| key_surface(k)));
            s.dist
                .extend(lanes.key.iter().map(|&k| arm.abs_diff(key_cyl(k))));
        } else {
            for i in 0..lanes.len() {
                if lanes.seq[i] >= cutoff {
                    continue;
                }
                let k = lanes.key[i];
                let dist = arm.abs_diff(key_cyl(k));
                if let Some(budget) = budget {
                    let bound = disk.seek_bound_ns(dist);
                    let wait = (mod1(lanes.phase[i] - ruler.floor(bound)) * period) as u64;
                    if bound.saturating_add(wait) > budget {
                        continue;
                    }
                }
                s.seq.push(lanes.seq[i]);
                s.key.push(k);
                s.phase.push(lanes.phase[i]);
                s.write.push(key_write(k));
                s.surface.push(key_surface(k));
                s.dist.push(dist);
            }
        }
    }

    fn band_min_dist(&self, band: usize, arm: u32) -> u32 {
        let lo = band as u32 * BAND_CYLS;
        let hi = lo + (BAND_CYLS - 1);
        if arm < lo {
            lo - arm
        } else {
            arm.saturating_sub(hi)
        }
    }

    fn band_occupied(&self, band: usize) -> bool {
        self.band_bits
            .get(band / 64)
            .is_some_and(|w| w & (1 << (band % 64)) != 0)
    }

    fn next_band_at_or_above(&self, from: usize) -> Option<usize> {
        let nwords = self.band_bits.len();
        let (mut w, bit) = (from / 64, from % 64);
        if w >= nwords {
            return None;
        }
        let mut word = self.band_bits[w] & (!0u64 << bit);
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= nwords {
                return None;
            }
            word = self.band_bits[w];
        }
    }

    fn next_band_at_or_below(&self, from: usize) -> Option<usize> {
        let (mut w, bit) = (from / 64, from % 64);
        if w >= self.band_bits.len() {
            return None;
        }
        let mask = if bit == 63 {
            !0u64
        } else {
            (1u64 << (bit + 1)) - 1
        };
        let mut word = self.band_bits[w] & mask;
        loop {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = self.band_bits[w];
        }
    }

    fn id_at(&self, slot: u32, seq: u64) -> Option<TaskId> {
        let s = self.slots.get(slot as usize)?;
        if s.seq != seq || s.task.is_none() {
            return None;
        }
        Some(TaskId { slot, gen: s.gen })
    }

    fn index_insert(&mut self, disk: &SimDisk, id: TaskId, seq: u64) {
        // Move the task out of its slot for the duration: the index
        // structures and the slab are both `self`, and a by-value move is
        // free (no clone) while keeping borrows disjoint and the hot path
        // allocation-free.
        let Some(task) = self.slots[id.slot as usize].task.take() else {
            return;
        };
        match self.policy {
            Policy::Fcfs => {
                self.fcfs.insert((task.enqueued().as_nanos(), seq, id.slot));
            }
            Policy::Look | Policy::Rlook => {
                let cyl = task.candidates()[0].cylinder;
                let enq = task.enqueued().as_nanos();
                let slot = id.slot;
                self.sweep.entry(cyl).or_default().insert((enq, seq, slot));
            }
            Policy::Satf | Policy::Rsatf => {
                let write = task.is_write();
                let epoch = disk.phase_epoch();
                let limit = if self.policy.replica_aware() {
                    task.candidates().len()
                } else {
                    1
                };
                for (c, t) in task.candidates().iter().take(limit).enumerate() {
                    let band = (t.cylinder / BAND_CYLS) as usize;
                    if band >= self.bands.len() {
                        self.bands.resize_with(band + 1, BandLanes::default);
                        self.band_bits.resize(self.bands.len().div_ceil(64), 0);
                    }
                    let base = disk.sched_base_angle(t);
                    let key = pack_key(id.slot, t.cylinder, t.surface, c as u8, write);
                    self.bands[band].push(seq, key, disk.phase_of_angle(base), base, epoch);
                    self.band_bits[band / 64] |= 1 << (band % 64);
                    self.lane_count += 1;
                }
            }
        }
        self.slots[id.slot as usize].task = Some(task);
    }

    fn index_remove(&mut self, id: TaskId, seq: u64) {
        let Some(task) = self.slots[id.slot as usize].task.take() else {
            return;
        };
        match self.policy {
            Policy::Fcfs => {
                self.fcfs
                    .remove(&(task.enqueued().as_nanos(), seq, id.slot));
            }
            Policy::Look | Policy::Rlook => {
                let cyl = task.candidates()[0].cylinder;
                let enq = task.enqueued().as_nanos();
                if let Some(set) = self.sweep.get_mut(&cyl) {
                    set.remove(&(enq, seq, id.slot));
                    if set.is_empty() {
                        self.sweep.remove(&cyl);
                    }
                }
            }
            Policy::Satf | Policy::Rsatf => {
                let limit = if self.policy.replica_aware() {
                    task.candidates().len()
                } else {
                    1
                };
                for t in task.candidates().iter().take(limit) {
                    let band = (t.cylinder / BAND_CYLS) as usize;
                    let lanes = &mut self.bands[band];
                    // `seq` alone identifies the entry; each loop pass
                    // removes one of its lanes in this band, so entries
                    // with several replicas in one band drain fully.
                    if let Some(at) = lanes.seq.iter().position(|&s| s == seq) {
                        lanes.swap_remove(at);
                        self.lane_count -= 1;
                    }
                    if lanes.is_empty() {
                        self.band_bits[band / 64] &= !(1 << (band % 64));
                    }
                }
            }
        }
        self.slots[id.slot as usize].task = Some(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_disk::{DiskParams, PositionKnowledge, Target, TimingPath};
    use mimd_sim::SimRng;

    #[derive(Debug, Clone)]
    struct Entry {
        candidates: Vec<Target>,
        write: bool,
        at: SimTime,
    }

    impl Schedulable for Entry {
        fn candidates(&self) -> &[Target] {
            &self.candidates
        }
        fn is_write(&self) -> bool {
            self.write
        }
        fn enqueued(&self) -> SimTime {
            self.at
        }
    }

    fn disk() -> SimDisk {
        SimDisk::new(
            &DiskParams::st39133lwv(),
            TimingPath::Detailed,
            PositionKnowledge::Perfect,
            7,
        )
        .unwrap()
    }

    fn random_entry(rng: &mut SimRng, cyls: u32, max_at_us: u64) -> Entry {
        let dr = 1 + rng.below(4) as usize;
        Entry {
            candidates: (0..dr)
                .map(|k| Target {
                    cylinder: rng.below(cyls as u64) as u32,
                    surface: k as u32,
                    angle: rng.unit(),
                    sectors: 8,
                })
                .collect(),
            write: rng.below(4) == 0,
            at: SimTime::from_micros(rng.below(max_at_us.max(1))),
        }
    }

    /// Every lane column of the band index must mirror the queue contents,
    /// and every phase lane stamped with the current epoch must equal the
    /// disk's own `sched_phase` of its target.
    fn check_index(dq: &DriveQueue<Entry>, d: &SimDisk, mirror: &[Entry], ids: &[TaskId]) {
        if !matches!(dq.policy, Policy::Satf | Policy::Rsatf) {
            return;
        }
        // (band, seq, slot, cand, cyl, surface, write, phase bits)
        type Lane = (usize, u64, u32, u8, u32, u32, u8, u64);
        let mut want: Vec<Lane> = Vec::new();
        for (i, e) in mirror.iter().enumerate() {
            let id = ids[i];
            let seq = dq.slots[id.slot as usize].seq;
            let limit = if dq.policy.replica_aware() {
                e.candidates.len()
            } else {
                1
            };
            for (c, t) in e.candidates.iter().take(limit).enumerate() {
                want.push((
                    (t.cylinder / BAND_CYLS) as usize,
                    seq,
                    id.slot,
                    c as u8,
                    t.cylinder,
                    t.surface,
                    u8::from(e.write),
                    d.sched_phase(t).to_bits(),
                ));
            }
        }
        let mut got: Vec<Lane> = Vec::new();
        let epoch = d.phase_epoch();
        for (b, lanes) in dq.bands.iter().enumerate() {
            assert_eq!(
                dq.band_occupied(b),
                !lanes.is_empty(),
                "band bit desync at {b}"
            );
            for i in 0..lanes.len() {
                // A current-epoch band's phases must already be the
                // repaired values; a stale band repairs from base angles.
                let phase = if lanes.epoch == epoch {
                    lanes.phase[i]
                } else {
                    d.phase_of_angle(lanes.base_angle[i])
                };
                let k = lanes.key[i];
                got.push((
                    b,
                    lanes.seq[i],
                    key_slot(k),
                    key_cand(k),
                    key_cyl(k),
                    key_surface(k),
                    key_write(k),
                    phase.to_bits(),
                ));
            }
        }
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want, "band index desynced");
    }

    /// The load-bearing equivalence property: on every randomized queue —
    /// built through interleaved inserts, removals, and in-place updates —
    /// the indexed pick must equal the windowed scan of `sched::pick`:
    /// same entry, same replica, same sweep-direction side effect.
    #[test]
    fn indexed_pick_matches_scan_on_randomized_queues() {
        let cyls = DiskParams::st39133lwv().total_cylinders();
        let policies = [
            Policy::Fcfs,
            Policy::Look,
            Policy::Satf,
            Policy::Rlook,
            Policy::Rsatf,
        ];
        mimd_sim::check::check_cases("indexed pick equals scan", 40, |case, rng| {
            let mut d = disk();
            // Move the head somewhere interesting.
            let park = Target {
                cylinder: rng.below(cyls as u64) as u32,
                surface: 0,
                angle: rng.unit(),
                sectors: 8,
            };
            let _ = d.begin(SimTime::ZERO, &park, false);
            let now = d.busy_until();
            let slack = if case % 3 == 0 {
                SimDuration::from_micros(rng.below(2_000))
            } else {
                SimDuration::ZERO
            };
            // A small window sometimes, to exercise the fallback boundary.
            let window = if case % 4 == 0 { 8 } else { 128 };
            for policy in policies {
                let mut dq: DriveQueue<Entry> = DriveQueue::new(policy);
                let mut mirror: Vec<Entry> = Vec::new();
                let mut ids: Vec<TaskId> = Vec::new();
                let upward = rng.below(2) == 0;
                let mut look_dq = LookState::default();
                let mut look_scan = LookState::default();
                look_dq.upward = upward;
                look_scan.upward = upward;
                for step in 0..60 {
                    match rng.below(10) {
                        // Mostly inserts so queues get deep.
                        0..=5 => {
                            let e = random_entry(rng, cyls, 1 + step * 10);
                            ids.push(dq.insert(&d, e.clone()));
                            mirror.push(e);
                            check_index(&dq, &d, &mirror, &ids);
                        }
                        6 => {
                            if !mirror.is_empty() {
                                let at = rng.below(mirror.len() as u64) as usize;
                                let got = dq.remove(ids.remove(at));
                                mirror.remove(at);
                                assert!(got.is_some(), "live id must remove");
                                check_index(&dq, &d, &mirror, &ids);
                            }
                        }
                        7 => {
                            // Coalesce-style in-place update: new targets and
                            // enqueued time, same arrival position.
                            if !mirror.is_empty() {
                                let at = rng.below(mirror.len() as u64) as usize;
                                let e = random_entry(rng, cyls, 1 + step * 10);
                                let ok = dq.replace_with(&d, ids[at], |t| {
                                    t.candidates = e.candidates.clone();
                                    t.write = e.write;
                                    t.at = e.at;
                                });
                                assert!(ok);
                                mirror[at] = e;
                                check_index(&dq, &d, &mirror, &ids);
                            }
                        }
                        _ => {
                            let w = window.min(mirror.len());
                            let want =
                                sched::pick(policy, &d, now, &mirror[..w], &mut look_scan, slack)
                                    .map(|p| (ids[p.queue_index], p.candidate));
                            let got = dq.pick(&d, now, &mut look_dq, slack, window);
                            assert_eq!(
                                got,
                                want,
                                "policy {policy}, step {step}, depth {}",
                                mirror.len()
                            );
                            assert_eq!(look_dq.upward, look_scan.upward, "sweep diverged");
                        }
                    }
                }
                // Drain by repeated pick+remove: full agreement to empty.
                loop {
                    let w = window.min(mirror.len());
                    let want = sched::pick(policy, &d, now, &mirror[..w], &mut look_scan, slack)
                        .map(|p| (p.queue_index, p.candidate));
                    let got = dq.pick(&d, now, &mut look_dq, slack, window);
                    match (got, want) {
                        (None, None) => break,
                        (Some((id, c)), Some((qi, wc))) => {
                            assert_eq!((id, c), (ids[qi], wc), "drain diverged ({policy})");
                            assert!(dq.remove(id).is_some());
                            ids.remove(qi);
                            mirror.remove(qi);
                        }
                        (g, w) => panic!("presence diverged ({policy}): {g:?} vs {w:?}"),
                    }
                }
                assert!(dq.is_empty());
            }
        });
    }

    /// Read-ahead drives must take the fallback path (a potential buffer
    /// hit has bound 0 at any distance) and still agree with the scan.
    #[test]
    fn read_ahead_falls_back_and_matches() {
        let cyls = DiskParams::st39133lwv().total_cylinders();
        let mut d = disk();
        d.set_read_ahead(true);
        let warm = Target {
            cylinder: 1_234,
            surface: 2,
            angle: 0.3,
            sectors: 8,
        };
        let _ = d.begin(SimTime::ZERO, &warm, false);
        let now = d.busy_until();
        let mut rng = SimRng::seed_from(0xAB5);
        for policy in [Policy::Satf, Policy::Rsatf] {
            let mut dq: DriveQueue<Entry> = DriveQueue::new(policy);
            let mut mirror = Vec::new();
            let mut ids = Vec::new();
            for _ in 0..24 {
                let mut e = random_entry(&mut rng, cyls, 50);
                // Make some candidates buffered-track hits.
                if rng.below(3) == 0 {
                    e.candidates[0] = warm;
                    e.write = false;
                }
                ids.push(dq.insert(&d, e.clone()));
                mirror.push(e);
            }
            let mut look_a = LookState::default();
            let mut look_b = LookState::default();
            let want = sched::pick(policy, &d, now, &mirror, &mut look_b, SimDuration::ZERO)
                .map(|p| (ids[p.queue_index], p.candidate));
            let got = dq.pick(&d, now, &mut look_a, SimDuration::ZERO, 128);
            assert_eq!(got, want, "{policy}");
        }
    }

    /// A spindle-phase change must invalidate every memoised `sched_phase`:
    /// pick once (warming the per-candidate phase memos), shift the phase
    /// offset, then require the next indexed pick to agree with a fresh
    /// scan of the same queue. Without the epoch stamp the warm memos
    /// would survive `set_phase_offset` and the rotational prune (and the
    /// candidate costs themselves) would run on phases from the old
    /// spindle alignment.
    #[test]
    fn phase_memo_never_survives_spindle_phase_change() {
        let cyls = DiskParams::st39133lwv().total_cylinders();
        mimd_sim::check::check_cases("phase memo respects epoch", 24, |_case, rng| {
            for policy in [Policy::Satf, Policy::Rsatf] {
                let mut d = disk();
                let park = Target {
                    cylinder: rng.below(cyls as u64) as u32,
                    surface: 0,
                    angle: rng.unit(),
                    sectors: 8,
                };
                let _ = d.begin(SimTime::ZERO, &park, false);
                let now = d.busy_until();
                let mut dq: DriveQueue<Entry> = DriveQueue::new(policy);
                let mut mirror = Vec::new();
                let mut ids = Vec::new();
                for _ in 0..32 {
                    let e = random_entry(rng, cyls, 50);
                    ids.push(dq.insert(&d, e.clone()));
                    mirror.push(e);
                }
                let mut look_a = LookState::default();
                let mut look_b = LookState::default();
                // Warm the memos under the initial spindle alignment.
                let _ = dq.pick(&d, now, &mut look_a, SimDuration::ZERO, 128);
                // Re-align the spindle; every memoised phase is now wrong.
                d.set_phase_offset(0.125 + rng.unit() * 0.75);
                let want = sched::pick(policy, &d, now, &mirror, &mut look_b, SimDuration::ZERO)
                    .map(|p| (ids[p.queue_index], p.candidate));
                let got = dq.pick(&d, now, &mut look_a, SimDuration::ZERO, 128);
                assert_eq!(got, want, "{policy}: stale phase memo changed the pick");
            }
        });
    }

    #[test]
    fn stale_ids_are_inert() {
        let d = disk();
        let mut dq: DriveQueue<Entry> = DriveQueue::new(Policy::Rsatf);
        let e = Entry {
            candidates: vec![Target {
                cylinder: 5,
                surface: 0,
                angle: 0.5,
                sectors: 8,
            }],
            write: false,
            at: SimTime::ZERO,
        };
        let id = dq.insert(&d, e.clone());
        assert!(dq.remove(id).is_some());
        // Double-remove is a no-op, and a recycled slot gets a fresh gen.
        assert!(dq.remove(id).is_none());
        assert!(!dq.replace_with(&d, id, |_| {}));
        let id2 = dq.insert(&d, e);
        assert_eq!(id2.slot, id.slot, "slot is recycled");
        assert_ne!(id2.gen, id.gen, "generation advances");
        assert!(dq.get(id).is_none());
        assert!(dq.get(id2).is_some());
    }

    #[test]
    fn arrival_order_survives_middle_removals() {
        let d = disk();
        let mut dq: DriveQueue<Entry> = DriveQueue::new(Policy::Fcfs);
        let mk = |at: u64| Entry {
            candidates: vec![Target {
                cylinder: 1,
                surface: 0,
                angle: 0.1,
                sectors: 8,
            }],
            write: false,
            at: SimTime::from_micros(at),
        };
        let a = dq.insert(&d, mk(3));
        let b = dq.insert(&d, mk(1));
        let c = dq.insert(&d, mk(2));
        assert_eq!(dq.ids(), &[a, b, c]);
        assert!(dq.remove(b).is_some());
        assert_eq!(dq.ids(), &[a, c]);
        let d2 = dq.insert(&d, mk(0));
        assert_eq!(dq.ids(), &[a, c, d2]);
        assert_eq!(dq.len(), 3);
    }

    /// Exhaustive band-run equivalence at fixed depths, including depths
    /// beyond the 128-entry scheduling window: the banded SATF pick masks
    /// out-of-window lanes by sequence number instead of falling back to
    /// the scan, and must still agree with the windowed scan on every
    /// drain step down to empty.
    #[test]
    fn banded_pick_matches_windowed_scan_at_fixed_depths() {
        let cyls = DiskParams::st39133lwv().total_cylinders();
        const WINDOW: usize = 128;
        mimd_sim::check::check_cases("banded pick at fixed depths", 6, |case, rng| {
            for depth in [4usize, 16, 64, 256] {
                for policy in [Policy::Satf, Policy::Rsatf] {
                    let mut d = disk();
                    let park = Target {
                        cylinder: rng.below(cyls as u64) as u32,
                        surface: 0,
                        angle: rng.unit(),
                        sectors: 8,
                    };
                    let _ = d.begin(SimTime::ZERO, &park, false);
                    let now = d.busy_until();
                    let slack = if case % 2 == 0 {
                        SimDuration::from_micros(500)
                    } else {
                        SimDuration::ZERO
                    };
                    let mut dq: DriveQueue<Entry> = DriveQueue::new(policy);
                    let mut mirror: Vec<Entry> = Vec::new();
                    let mut ids: Vec<TaskId> = Vec::new();
                    for _ in 0..depth {
                        let e = random_entry(rng, cyls, 50);
                        ids.push(dq.insert(&d, e.clone()));
                        mirror.push(e);
                    }
                    // Drain to empty: the queue crosses the window boundary
                    // mid-drain at depth 256, so both the masked and the
                    // unmasked argmin paths are exercised.
                    while !mirror.is_empty() {
                        let w = WINDOW.min(mirror.len());
                        let mut look_a = LookState::default();
                        let mut look_b = LookState::default();
                        let want = sched::pick(policy, &d, now, &mirror[..w], &mut look_b, slack)
                            .map(|p| (ids[p.queue_index], p.candidate));
                        let got = dq.pick(&d, now, &mut look_a, slack, WINDOW);
                        assert_eq!(got, want, "{policy} depth {depth}");
                        let (id, _) = got.expect("non-empty queue must pick");
                        let at = ids
                            .iter()
                            .position(|&x| x == id)
                            .expect("picked id is live");
                        assert!(dq.remove(id).is_some());
                        ids.remove(at);
                        mirror.remove(at);
                    }
                }
            }
        });
    }
}
