//! MimdRAID: the SR-Array disk-array design from *"Trading Capacity for
//! Performance in a Disk Array"* (OSDI 2000).
//!
//! An SR-Array spends a budget of `D` disks on a balanced mix of striping
//! (bounding seek distance) and rotational replication (bounding rotational
//! delay). This crate provides:
//!
//! - [`config`]: the `Ds × Dr × Dm` configuration space ([`Shape`]).
//! - [`models`]: the paper's analytical models, Equations (1)–(16), and the
//!   integer-constrained aspect-ratio optimizer.
//! - [`layout`]: logical→physical data placement ([`Layout`]).
//! - [`sched`]: rotation-aware local disk schedulers (LOOK, SATF, RLOOK,
//!   RSATF).
//! - [`engine`]: the array simulator ([`ArraySim`]) with mirror-read
//!   heuristics, foreground/background replica propagation, the NVRAM
//!   delayed-write table, and an optional memory cache.
//!
//! # Examples
//!
//! Configure a six-disk array for a Cello-like workload and measure it:
//!
//! ```
//! use mimd_core::models::{recommend_latency_shape, DiskCharacter};
//! use mimd_core::{ArraySim, EngineConfig};
//! use mimd_disk::DiskParams;
//! use mimd_workload::SyntheticSpec;
//!
//! let character = DiskCharacter::from_params(&DiskParams::st39133lwv());
//! let shape = recommend_latency_shape(&character.with_locality(4.14), 6, 1.0);
//! assert_eq!((shape.ds, shape.dr), (2, 3));
//!
//! let trace = SyntheticSpec::cello_base().generate(1, 300);
//! let mut sim = ArraySim::new(EngineConfig::new(shape), trace.data_sectors).unwrap();
//! let report = sim.run_trace(&trace);
//! assert_eq!(report.completed, 300);
//! ```

pub mod config;
pub mod dqueue;
pub mod engine;
pub mod faults;
pub mod layout;
pub mod models;
pub mod sched;
pub mod tuner;

pub use config::{Shape, ShapeKind};
pub use dqueue::{DriveQueue, TaskId};
pub use engine::report::{FaultReport, PredictionStats, RunReport};
pub use engine::{ArraySim, CacheConfig, EngineConfig, MirrorPolicy, WriteMode};
pub use faults::{FailSlow, FailStop, FaultPlan, MediaErrors, RebuildConfig, RetryPolicy};
pub use layout::{
    Fragment, Layout, LayoutError, ParityConfig, ParityLoc, RaidLevel, Replica, ReplicaPlacement,
};
pub use sched::Policy;
pub use tuner::{Advice, Advisor, WorkloadObserver, WorkloadProfile};
