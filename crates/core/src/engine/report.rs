//! Run results: the numbers every experiment binary prints.

use mimd_sim::{demerit, OnlineStats, SampleSet, SimDuration};

/// Prediction-accuracy statistics (the rows of Table 2).
#[derive(Debug, Clone, Default)]
pub struct PredictionStats {
    /// Physical requests whose rotational prediction missed and paid a full
    /// extra revolution.
    pub misses: u64,
    /// Physical requests measured.
    pub requests: u64,
    /// Signed prediction error samples in microseconds
    /// (actual − predicted access time).
    pub error: OnlineStats,
    /// Predicted access times (µs).
    pub predicted_us: SampleSet,
    /// Measured access times (µs).
    pub actual_us: SampleSet,
}

impl PredictionStats {
    /// Miss rate over all measured physical requests.
    pub fn miss_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// The Ruemmler–Wilkes demerit figure between predicted and measured
    /// access-time distributions, in microseconds.
    pub fn demerit_us(&mut self) -> f64 {
        demerit(&mut self.predicted_us, &mut self.actual_us)
    }

    /// Mean measured access time in microseconds.
    pub fn avg_access_us(&self) -> f64 {
        self.actual_us.mean()
    }
}

/// Degraded-mode observability: what the fault layer did to this run.
///
/// `active` distinguishes "no faults were configured" from "faults were
/// configured but nothing fired" — the harness only emits the `faults`
/// JSON object when it is set, which is what keeps fault-free figure
/// output byte-identical to builds that predate the fault layer.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// A non-empty `FaultPlan` drove this run.
    pub active: bool,
    /// Physical operations re-issued (alternate replica or same disk).
    pub retries: u64,
    /// Reads steered away from a fail-slow disk at dispatch time.
    pub redirects: u64,
    /// Simulated-time timeouts that fired on a still-pending task.
    pub timeouts: u64,
    /// Transient media errors injected on completing operations.
    pub media_errors: u64,
    /// Logical requests that exhausted every retry and were failed.
    pub unrecoverable: u64,
    /// Copy chunks written to a hot spare during rebuild.
    pub rebuild_chunks: u64,
    /// Hot-spare rebuilds that ran to completion.
    pub rebuilds_completed: u64,
    /// Wall-clock (simulated) duration of the last completed rebuild.
    pub rebuild_duration: SimDuration,
    /// Parity organizations: reads served by reconstructing the lost
    /// block from the group's `G−1` survivors.
    pub degraded_reads: u64,
    /// Parity organizations: small-write read–modify–write sequences
    /// issued against a fully healthy group.
    pub rmw_updates: u64,
    /// Parity organizations: rebuild chunks reconstructed onto the hot
    /// spare by XOR-ing all survivors (the parity twin of
    /// `rebuild_chunks`).
    pub reconstruction_chunks: u64,
    /// Visible response times (ms) completed while the array was healthy.
    pub healthy_ms: SampleSet,
    /// Visible response times (ms) completed while degraded (a disk dead
    /// or inside a fail-slow window), but not rebuilding.
    pub degraded_ms: SampleSet,
    /// Visible response times (ms) completed while a rebuild was running.
    pub rebuilding_ms: SampleSet,
}

impl FaultReport {
    /// Folds a shard's fault counters into the array-level report.
    ///
    /// Counters sum; `rebuild_duration` keeps the longest rebuild. The
    /// health-classified response sets are *not* merged — completions are
    /// classified at the conductor, which is the only place the whole
    /// array's health is known.
    pub(crate) fn merge_counters(&mut self, other: &FaultReport) {
        self.retries += other.retries;
        self.redirects += other.redirects;
        self.timeouts += other.timeouts;
        self.media_errors += other.media_errors;
        self.unrecoverable += other.unrecoverable;
        self.rebuild_chunks += other.rebuild_chunks;
        self.rebuilds_completed += other.rebuilds_completed;
        if other.rebuild_duration > self.rebuild_duration {
            self.rebuild_duration = other.rebuild_duration;
        }
        self.degraded_reads += other.degraded_reads;
        self.rmw_updates += other.rmw_updates;
        self.reconstruction_chunks += other.reconstruction_chunks;
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Logical requests completed.
    pub completed: u64,
    /// Instant of the last visible completion.
    pub sim_time: SimDuration,
    /// Response times of latency-visible requests (ms).
    pub response_ms: OnlineStats,
    /// Response-time samples (ms) for percentiles.
    pub response_samples_ms: SampleSet,
    /// Read responses (ms).
    pub read_ms: OnlineStats,
    /// Synchronous-write responses (ms).
    pub write_ms: OnlineStats,
    /// Physical disk operations issued (including delayed propagation).
    pub phys_requests: u64,
    /// Delayed replica writes propagated in the background.
    pub delayed_propagated: u64,
    /// Delayed writes coalesced away by newer writes to the same block.
    pub delayed_coalesced: u64,
    /// Peak NVRAM delayed-write table occupancy.
    pub nvram_peak: usize,
    /// Cache hits (when a memory cache is configured).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Requests that lost every copy to disk failures.
    pub failed_requests: u64,
    /// Head-position prediction accuracy.
    pub prediction: PredictionStats,
    /// Seek component of foreground physical operations (ms).
    pub seek_ms: OnlineStats,
    /// Rotational component of foreground physical operations (ms).
    pub rotation_ms: OnlineStats,
    /// Transfer component of foreground physical operations (ms).
    pub transfer_ms: OnlineStats,
    /// Queueing delay between enqueue and service start (ms).
    pub queue_wait_ms: OnlineStats,
    /// Fault-injection and recovery observability (all-zero when the run
    /// had an empty `FaultPlan`).
    pub faults: FaultReport,
    /// Determinism witness: an order-sensitive FNV-1a digest of every
    /// event pop the run made (`(time, seq, disk, kind)` records). Two
    /// runs of the same experiment must produce the same value at any
    /// thread count; CI asserts this across `MIMD_THREADS=1` and `=8`.
    pub witness: u64,
}

impl RunReport {
    /// Mean visible response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.response_ms.mean()
    }

    /// Completed requests per second of simulated time.
    pub fn throughput_iops(&self) -> f64 {
        let secs = self.sim_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// The p-th response-time percentile in milliseconds.
    pub fn response_percentile_ms(&mut self, p: f64) -> Option<f64> {
        self.response_samples_ms.percentile(p)
    }

    /// Folds one shard's dispatch-level accounting into the array-level
    /// report: physical-operation counters, delayed-write counters, and
    /// the per-operation timing/prediction statistics. Always applied in
    /// shard order, so the floating-point folds are independent of how
    /// shards were packed onto worker threads.
    pub(crate) fn merge_dispatch(&mut self, other: &RunReport) {
        self.phys_requests += other.phys_requests;
        self.delayed_propagated += other.delayed_propagated;
        self.delayed_coalesced += other.delayed_coalesced;
        self.prediction.misses += other.prediction.misses;
        self.prediction.requests += other.prediction.requests;
        self.prediction.error.merge(&other.prediction.error);
        for &v in other.prediction.predicted_us.values() {
            self.prediction.predicted_us.push(v);
        }
        for &v in other.prediction.actual_us.values() {
            self.prediction.actual_us.push(v);
        }
        self.seek_ms.merge(&other.seek_ms);
        self.rotation_ms.merge(&other.rotation_ms);
        self.transfer_ms.merge(&other.transfer_ms);
        self.queue_wait_ms.merge(&other.queue_wait_ms);
        // Parity counters accumulate on the shard's own report (no
        // FaultCtx needed for a healthy parity run), so they fold here
        // rather than in `merge_counters`.
        self.faults.degraded_reads += other.faults.degraded_reads;
        self.faults.rmw_updates += other.faults.rmw_updates;
        self.faults.reconstruction_chunks += other.faults.reconstruction_chunks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_zeroed() {
        let mut r = RunReport::default();
        assert_eq!(r.mean_response_ms(), 0.0);
        assert_eq!(r.throughput_iops(), 0.0);
        assert_eq!(r.response_percentile_ms(0.5), None);
        assert_eq!(r.prediction.miss_rate(), 0.0);
    }

    #[test]
    fn throughput_divides_by_time() {
        let r = RunReport {
            completed: 500,
            sim_time: SimDuration::from_secs(10),
            ..Default::default()
        };
        assert!((r.throughput_iops() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_stats_aggregate() {
        let mut p = PredictionStats::default();
        for i in 0..100 {
            p.requests += 1;
            p.error.push(3.0);
            p.predicted_us.push(1_000.0 + i as f64);
            p.actual_us.push(1_003.0 + i as f64);
        }
        p.misses = 1;
        assert!((p.miss_rate() - 0.01).abs() < 1e-12);
        assert!((p.error.mean() - 3.0).abs() < 1e-12);
        let d = p.demerit_us();
        assert!((d - 3.0).abs() < 1e-9, "demerit {d}");
        assert!((p.avg_access_us() - 1_052.5).abs() < 1e-9);
    }
}
