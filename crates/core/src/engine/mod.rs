//! The array simulation engine: MimdRAID's disk-configuration, scheduling,
//! and delayed-write layers (§3.1, §3.3, §3.4) over simulated drives.
//!
//! One [`ArraySim`] drives an array of [`SimDisk`]s through a deterministic
//! event loop. It implements:
//!
//! - logical→physical translation through [`Layout`] (64 KiB stripe units);
//! - per-disk *drive queues* with a pluggable [`Policy`] (§3.3);
//! - the mirror read heuristic: send to the closest idle copy, else
//!   duplicate into every owner's queue and cancel the losers once one
//!   disk starts the request (§3.3);
//! - foreground multi-replica writes that walk a block's rotational
//!   replicas greedily within (ideally) one revolution (§2.2, §3.4);
//! - delayed background propagation with per-disk delayed-write queues, an
//!   NVRAM metadata table with a forced-flush threshold, and write
//!   coalescing for data that die young (§3.4);
//! - an optional LRU memory cache in front of the array (§4.1, Figure 11).
//!
//! Construct one `ArraySim` per experiment run; `run_trace` (open loop) and
//! `run_closed_loop` (Iometer-style) both consume the instance's state.

pub mod cache;
pub mod report;

use std::collections::{BTreeMap, VecDeque};

use mimd_disk::DiskParams;
use mimd_disk::{Geometry, PositionKnowledge, SeekProfile, SimDisk, Target, TimingPath};
use mimd_sim::{DetWitness, EventQueue, SimDuration, SimRng, SimTime};
use mimd_workload::{IometerSpec, Op, RequestSource, Trace};

use crate::config::Shape;
use crate::dqueue::{DriveQueue, TaskId};
use crate::faults::{FaultCtx, FaultPlan, RebuildState};
use crate::layout::{
    Fragment, Layout, LayoutError, Replica, ReplicaPlacement, DEFAULT_STRIPE_UNIT,
};
use crate::sched::{LookState, Policy, Schedulable};

use cache::LruCache;
use report::RunReport;

/// How write replicas are propagated (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Every copy is written before the request completes (worst case of
    /// Equation (3); the Figure 13 regime).
    Foreground,
    /// The closest copy is written in the foreground; the rest propagate
    /// from per-disk delayed-write queues during idle time.
    Background,
}

/// How a mirrored read picks a disk when several hold the data (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorPolicy {
    /// The paper's heuristic: immediate dispatch to the closest idle owner,
    /// else duplicate into every owner's queue.
    IdleOrDuplicate,
    /// Static assignment by block address (ablation baseline).
    Static,
}

/// Memory-cache configuration for the Figure 11 comparison.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Cache size in bytes.
    pub bytes: u64,
    /// Service time of a cache hit.
    pub hit_time: SimDuration,
}

/// Full configuration of an array simulation.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Array shape `Ds × Dr × Dm`.
    pub shape: Shape,
    /// Per-disk scheduling policy.
    pub policy: Policy,
    /// Replica-propagation mode.
    pub write_mode: WriteMode,
    /// Drive parameter set.
    pub disk_params: DiskParams,
    /// Timing fidelity.
    pub timing: TimingPath,
    /// Head-position knowledge (perfect vs software-tracked).
    pub knowledge: PositionKnowledge,
    /// Stripe unit in sectors.
    pub stripe_unit: u32,
    /// Stagger mirror copies rotationally (§2.5 striped mirror).
    pub mirror_stagger: bool,
    /// Synchronise spindles across disks (else random phase offsets).
    pub sync_spindles: bool,
    /// Mirrored-read dispatch policy.
    pub mirror_policy: MirrorPolicy,
    /// NVRAM delayed-write table threshold (§3.4: 10 000 entries).
    pub nvram_threshold: usize,
    /// Coalesce superseded delayed writes (§3.4 "data that die young").
    pub coalesce_delayed: bool,
    /// Optional front-end memory cache.
    pub cache: Option<CacheConfig>,
    /// Scheduling slack: replicas predicted closer than this are treated
    /// as a full revolution away (§3.2's k-sector conservatism). Only
    /// meaningful under tracked position knowledge.
    pub slack: SimDuration,
    /// Rotational-replica placement (§2.2; `Random` is an ablation).
    pub replica_placement: ReplicaPlacement,
    /// Enable the drives' track read-ahead buffers (off by default, as in
    /// the paper's experiments; see the read-ahead ablation).
    pub read_ahead: bool,
    /// Random seed (spindle phases, head-tracking error).
    pub seed: u64,
    /// Fault-injection plan. The default (empty) plan disables the fault
    /// layer entirely: no extra RNG streams, no extra events, byte-identical
    /// reports (value-neutrality).
    pub faults: FaultPlan,
}

impl EngineConfig {
    /// A configuration with the paper's defaults: RSATF on SR-Arrays and
    /// SATF elsewhere, background propagation, detailed timing, software
    /// head tracking at Table 2's accuracy, 64 KiB stripe unit,
    /// unsynchronised spindles, and a 10 000-entry NVRAM table.
    pub fn new(shape: Shape) -> Self {
        EngineConfig {
            shape,
            policy: Policy::default_for_dr(shape.dr),
            write_mode: WriteMode::Background,
            disk_params: DiskParams::st39133lwv(),
            timing: TimingPath::Detailed,
            knowledge: PositionKnowledge::Tracked {
                mean_error_us: 3.0,
                std_error_us: 31.0,
            },
            stripe_unit: DEFAULT_STRIPE_UNIT,
            mirror_stagger: false,
            sync_spindles: false,
            mirror_policy: MirrorPolicy::IdleOrDuplicate,
            nvram_threshold: 10_000,
            coalesce_delayed: true,
            cache: None,
            // Four sectors' worth at the outer zone, per §3.2.
            slack: SimDuration::from_micros(110),
            replica_placement: ReplicaPlacement::Even,
            read_ahead: false,
            seed: 42,
            faults: FaultPlan::default(),
        }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the write-propagation mode.
    pub fn with_write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = mode;
        self
    }

    /// Uses perfect head-position knowledge (and drops the slack, which
    /// only hedges prediction error).
    pub fn with_perfect_knowledge(mut self) -> Self {
        self.knowledge = PositionKnowledge::Perfect;
        self.slack = SimDuration::ZERO;
        self
    }

    /// Installs a memory cache.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Bound on how many queued entries a policy examines per decision, keeping
/// scheduling cost finite in saturated (beyond-knee) open-loop runs.
const SCHED_WINDOW: usize = 128;

/// Recycled task shells kept at most this many; beyond it, completed
/// tasks drop their buffers instead of hoarding them.
const TASK_POOL_CAP: usize = 256;

/// Compacts `reps[start..]` — runs of `dr` replicas sharing one disk —
/// down to the runs whose disk is still alive, preserving order.
fn compact_live_groups(reps: &mut Vec<Replica>, start: usize, dr: usize, dead: &[bool]) {
    let mut w = start;
    let mut r = start;
    while r < reps.len() {
        if !dead[reps[r].disk] {
            if w != r {
                for k in 0..dr {
                    reps[w + k] = reps[r + k];
                }
            }
            w += dr;
        }
        r += dr;
    }
    reps.truncate(w);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskKind {
    Read,
    /// Foreground write of all rotational replicas on this disk.
    WriteAll,
    /// Background-mode first copy; completion spawns delayed propagation.
    WriteFirst,
    /// One delayed replica propagation.
    Delayed,
    /// A hot-spare rebuild chunk read on a surviving mirror. Rides the
    /// delayed queue so foreground work wins the disk, and stays out of
    /// the foreground latency accounting.
    Rebuild,
}

#[derive(Debug, Clone)]
struct PendingTask {
    logical: u64,
    frag: Fragment,
    write: bool,
    kind: TaskKind,
    targets: Vec<Target>,
    /// `(replica, mirror)` per target.
    meta: Vec<(u8, u8)>,
    enqueued: SimTime,
    dup: Option<u64>,
    /// Coalescing key for delayed entries.
    key: (u64, u8, u8),
    /// Retry attempts consumed so far (fault layer).
    attempt: u8,
    /// Timeout-tracking stamp; `0` means no timeout is armed on this task.
    track: u64,
}

impl PendingTask {
    /// An empty shell for the recycling pool.
    fn shell() -> PendingTask {
        PendingTask {
            logical: 0,
            frag: Fragment { lbn: 0, sectors: 0 },
            write: false,
            kind: TaskKind::Read,
            targets: Vec::new(),
            meta: Vec::new(),
            enqueued: SimTime::ZERO,
            dup: None,
            key: (0, 0, 0),
            attempt: 0,
            track: 0,
        }
    }
}

impl Schedulable for PendingTask {
    fn candidates(&self) -> &[Target] {
        &self.targets
    }
    fn is_write(&self) -> bool {
        self.write
    }
    fn enqueued(&self) -> SimTime {
        self.enqueued
    }
}

#[derive(Debug, Clone, Copy)]
struct Logical {
    arrival: SimTime,
    op: Op,
    parts: u32,
    lbn: u64,
    sectors: u32,
    /// Whether any copy of this request was lost to a disk failure.
    failed: bool,
}

/// Packed [`Logical`] flags: bits 0–1 the op tag, bit 2 failed, bit 3
/// slot-live.
mod lflag {
    use mimd_workload::Op;

    pub const FAILED: u8 = 1 << 2;
    pub const LIVE: u8 = 1 << 3;

    pub fn op_bits(op: Op) -> u8 {
        match op {
            Op::Read => 0,
            Op::SyncWrite => 1,
            Op::AsyncWrite => 2,
        }
    }

    pub fn op_of(flags: u8) -> Op {
        match flags & 0b11 {
            0 => Op::Read,
            1 => Op::SyncWrite,
            _ => Op::AsyncWrite,
        }
    }
}

/// Live logical requests, addressed by their sequential id.
///
/// Ids are issued monotonically, so the live set always sits in a
/// contiguous id window: ring buffers indexed by `id - base` give O(1)
/// insert/lookup/remove with no per-entry node allocation (the original
/// `BTreeMap` cost one node split per ~handful of requests on the hot
/// path). Storage is struct-of-arrays: the completion hot path only
/// touches `parts` + `flags` (5 bytes/slot instead of a 40-byte struct),
/// so part-countdown traffic stays in a fraction of the cache lines, and
/// the full record is only gathered when the request actually completes.
#[derive(Debug, Default)]
struct LogicalTable {
    base: u64,
    arrivals: VecDeque<SimTime>,
    lbns: VecDeque<u64>,
    sectors: VecDeque<u32>,
    parts: VecDeque<u32>,
    flags: VecDeque<u8>,
    live: usize,
}

impl LogicalTable {
    fn insert(&mut self, id: u64, l: Logical) {
        debug_assert_eq!(id, self.base + self.arrivals.len() as u64);
        self.arrivals.push_back(l.arrival);
        self.lbns.push_back(l.lbn);
        self.sectors.push_back(l.sectors);
        self.parts.push_back(l.parts);
        self.flags.push_back(
            lflag::op_bits(l.op) | if l.failed { lflag::FAILED } else { 0 } | lflag::LIVE,
        );
        self.live += 1;
    }

    fn index(&self, id: u64) -> Option<usize> {
        let idx = id.checked_sub(self.base)? as usize;
        (idx < self.flags.len() && self.flags[idx] & lflag::LIVE != 0).then_some(idx)
    }

    /// Counts one part done (optionally failed); returns whether the
    /// request's last part just finished. One indexed lookup touching only
    /// the two hot columns.
    fn dec_part(&mut self, id: u64, failed: bool) -> Option<bool> {
        let idx = self.index(id)?;
        if failed {
            self.flags[idx] |= lflag::FAILED;
        }
        let p = self.parts[idx].saturating_sub(1);
        self.parts[idx] = p;
        Some(p == 0)
    }

    /// Removes a live request, gathering its full record from the columns.
    fn take(&mut self, id: u64) -> Option<Logical> {
        let idx = self.index(id)?;
        let l = Logical {
            arrival: self.arrivals[idx],
            op: lflag::op_of(self.flags[idx]),
            parts: self.parts[idx],
            lbn: self.lbns[idx],
            sectors: self.sectors[idx],
            failed: self.flags[idx] & lflag::FAILED != 0,
        };
        self.flags[idx] = 0;
        self.live -= 1;
        // Trim the drained prefix so the window tracks the live ids.
        while self.flags.front() == Some(&0) {
            self.arrivals.pop_front();
            self.lbns.pop_front();
            self.sectors.pop_front();
            self.parts.pop_front();
            self.flags.pop_front();
            self.base += 1;
        }
        Some(l)
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// Started mirror-duplicate generations, as a growable bitset.
///
/// Generations are issued from a monotone counter, so membership is a
/// word-indexed bit test instead of a `BTreeSet` descent; a 20 000-request
/// replay fits the whole set in ~3 KB of flat words.
#[derive(Debug, Default)]
struct DupSet {
    words: Vec<u64>,
}

impl DupSet {
    fn insert(&mut self, g: u64) {
        let (w, b) = ((g / 64) as usize, g % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    fn contains(&self, g: u64) -> bool {
        let (w, b) = ((g / 64) as usize, g % 64);
        self.words.get(w).is_some_and(|&word| word >> b & 1 != 0)
    }
}

#[derive(Debug)]
struct InFlight {
    task: PendingTask,
    chosen: usize,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Next trace arrival (cursor-driven).
    Arrival,
    /// A disk finished its in-flight physical operation.
    DiskDone(usize),
    /// A cache hit completes.
    CacheDone(u64),
    /// A disk fails (fault injection).
    DiskFail(usize),
    /// A fail-slow window opens on a disk.
    SlowStart(usize),
    /// A fail-slow window closes on a disk.
    SlowEnd(usize),
    /// A read's simulated-time timeout fires. Stale ids (the task already
    /// dispatched or completed) make this a no-op thanks to the queue's
    /// generation-tagged ids; `track` double-checks against slot reuse.
    Timeout {
        /// Disk whose foreground queue held the read.
        disk: usize,
        /// Queue id the timeout was armed against.
        id: TaskId,
        /// The task's timeout stamp at arming time.
        track: u64,
    },
    /// The hot spare for a failed disk comes online and copying begins.
    RebuildStart(usize),
    /// The spare finished writing one rebuild chunk (all `Dr` replicas).
    SpareDone(usize),
}

impl Event {
    /// The `(disk, kind)` pair folded into the determinism witness for
    /// every pop. Kind codes are part of the witness definition: renumber
    /// them and historical witness values stop being comparable.
    /// `u32::MAX` stands for "no single disk" (arrivals, cache hits).
    fn witness_code(&self) -> (u32, u8) {
        match *self {
            Event::Arrival => (u32::MAX, 0),
            Event::DiskDone(d) => (d as u32, 1),
            Event::CacheDone(_) => (u32::MAX, 2),
            Event::DiskFail(d) => (d as u32, 3),
            Event::SlowStart(d) => (d as u32, 4),
            Event::SlowEnd(d) => (d as u32, 5),
            Event::Timeout { disk, .. } => (disk as u32, 6),
            Event::RebuildStart(d) => (d as u32, 7),
            Event::SpareDone(d) => (d as u32, 8),
        }
    }
}

struct ClosedLoop {
    spec: IometerSpec,
    target: u64,
    issued: u64,
}

/// The array simulator.
///
/// # Examples
///
/// ```
/// use mimd_core::{ArraySim, EngineConfig, Shape};
/// use mimd_workload::SyntheticSpec;
///
/// let trace = SyntheticSpec::cello_base().generate(1, 200);
/// let cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap());
/// let mut sim = ArraySim::new(cfg, trace.data_sectors).unwrap();
/// let report = sim.run_trace(&trace);
/// assert_eq!(report.completed, 200);
/// assert!(report.mean_response_ms() > 0.0);
/// ```
pub struct ArraySim {
    cfg: EngineConfig,
    layout: Layout,
    disks: Vec<SimDisk>,
    fg: Vec<DriveQueue<PendingTask>>,
    delayed: Vec<DriveQueue<PendingTask>>,
    /// Mirror-duplicate tags per disk: (duplicate generation, queued id).
    /// Purged lazily at dispatch time — `dispatch_mirrored`'s idle test
    /// must keep seeing the unpurged queue.
    dup_tags: Vec<Vec<(u64, TaskId)>>,
    /// Delayed-write coalesce index per disk: replica key → queued id
    /// (maintained only when `coalesce_delayed` is on).
    delayed_keys: Vec<BTreeMap<(u64, u8, u8), TaskId>>,
    look: Vec<LookState>,
    inflight: Vec<Option<InFlight>>,
    events: EventQueue<Event>,
    logicals: LogicalTable,
    next_logical: u64,
    dup_started: DupSet,
    next_dup: u64,
    nvram: usize,
    cache: Option<LruCache>,
    cache_hit_time: SimDuration,
    rng: SimRng,
    report: RunReport,
    closed_loop: Option<ClosedLoop>,
    last_completion: SimTime,
    dead: Vec<bool>,
    pending_failures: Vec<(SimTime, usize)>,
    /// Fault-injection context; `None` for an empty [`FaultPlan`], which
    /// keeps every fault hook an inert `is_some()` test (value-neutrality).
    faults: Option<Box<FaultCtx>>,
    /// Reusable buffer for the multi-replica write chain in dispatch.
    write_scratch: Vec<Target>,
    /// Reusable fragment buffer for `submit`.
    frag_scratch: Vec<Fragment>,
    /// Flat replica-group buffer for the request being submitted (runs of
    /// `Dr` replicas per mirror disk, dead groups compacted away).
    plan_replicas: Vec<Replica>,
    /// Per-fragment plan: `(fragment, start, len)` into `plan_replicas`.
    plan_scratch: Vec<(Fragment, u32, u32)>,
    /// Flat replica buffer for completion/rehoming paths.
    group_scratch: Vec<Replica>,
    /// Disks touched during one submit (sorted+deduped before dispatch).
    touched_scratch: Vec<usize>,
    /// Recycled task shells: completed tasks return here with their
    /// target/meta buffers intact, so steady-state task creation does not
    /// allocate.
    task_pool: Vec<PendingTask>,
    /// Order-sensitive digest of every event pop this run; stamped into
    /// [`RunReport::witness`] and reset by `finish_report`.
    witness: DetWitness,
}

impl ArraySim {
    /// Builds an array for `data_sectors` of logical data.
    pub fn new(cfg: EngineConfig, data_sectors: u64) -> Result<Self, LayoutError> {
        let geometry = Geometry::new(&cfg.disk_params);
        let layout = Layout::new(
            cfg.shape,
            &geometry,
            data_sectors,
            cfg.stripe_unit,
            cfg.mirror_stagger,
        )?
        .with_placement(cfg.replica_placement);
        let n = layout.disks();
        // simlint: allow(rng-provenance) — root engine stream: the byte-identity gate pins its draw order; the shard refactor is the planned seam for naming it
        let mut rng = SimRng::seed_from(cfg.seed);
        // Calibrate the drive model once — the seek fit is a numeric
        // bisection costing ~1 ms — and stamp out per-disk copies. The
        // profile's lookup tables are Arc-shared across all spindles.
        let seek = SeekProfile::fit(&cfg.disk_params).map_err(LayoutError::InvalidDiskParams)?;
        let mut disks = Vec::with_capacity(n);
        for _ in 0..n {
            let mut d = SimDisk::with_parts(
                &cfg.disk_params,
                geometry.clone(),
                seek.clone(),
                cfg.timing,
                cfg.knowledge,
                // simlint: allow(rng-provenance) — per-disk seeds derive from the root stream in disk-index order; golden bytes pin this derivation
                rng.fork().below(u64::MAX),
            );
            if !cfg.sync_spindles {
                d.set_phase_offset(rng.unit());
            }
            d.set_read_ahead(cfg.read_ahead);
            disks.push(d);
        }
        let cache = cfg.cache.as_ref().map(|c| LruCache::new(c.bytes));
        let cache_hit_time = cfg
            .cache
            .as_ref()
            .map(|c| c.hit_time)
            .unwrap_or(SimDuration::ZERO);
        let cylinders = geometry.total_cylinders();
        // Disk-completion events land within a few rotations of "now"; a
        // calendar wheel sized to that horizon makes push/pop O(1).
        let horizon_ns = disks.first().map_or(1 << 24, |d| 4 * d.rotation_ns());
        // Fault layer: built only for non-empty plans, after every healthy
        // RNG draw above, from its own named stream — the engine's RNG
        // sequence is untouched either way.
        let faults = if cfg.faults.is_empty() {
            None
        } else {
            let ctx = FaultCtx::new(&cfg.faults, cfg.seed, n);
            for w in &ctx.plan.fail_slow {
                if w.disk < n {
                    disks[w.disk].add_fail_slow(w.from, w.until, w.factor);
                }
            }
            Some(Box::new(ctx))
        };
        Ok(ArraySim {
            layout,
            disks,
            fg: (0..n)
                .map(|_| DriveQueue::new(cfg.policy, cylinders))
                .collect(),
            delayed: (0..n)
                .map(|_| DriveQueue::new(cfg.policy, cylinders))
                .collect(),
            dup_tags: vec![Vec::new(); n],
            delayed_keys: vec![BTreeMap::new(); n],
            look: vec![LookState::default(); n],
            inflight: (0..n).map(|_| None).collect(),
            events: EventQueue::with_horizon_ns(horizon_ns),
            cfg,
            logicals: LogicalTable::default(),
            next_logical: 0,
            dup_started: DupSet::default(),
            next_dup: 0,
            nvram: 0,
            cache,
            cache_hit_time,
            rng,
            report: RunReport::default(),
            closed_loop: None,
            last_completion: SimTime::ZERO,
            dead: vec![false; n],
            pending_failures: Vec::new(),
            faults,
            write_scratch: Vec::new(),
            frag_scratch: Vec::new(),
            plan_replicas: Vec::new(),
            plan_scratch: Vec::new(),
            group_scratch: Vec::new(),
            touched_scratch: Vec::new(),
            task_pool: Vec::new(),
            witness: DetWitness::new(),
        })
    }

    /// Schedules a disk failure before a run (fault injection).
    ///
    /// At `at`, the disk stops servicing: its in-flight and queued work is
    /// re-dispatched to surviving mirror copies where they exist, pending
    /// delayed propagations to it are dropped, and later requests whose
    /// only copies lived there complete as failed
    /// ([`RunReport::failed_requests`]).
    pub fn schedule_disk_failure(&mut self, at: SimTime, disk: usize) {
        assert!(disk < self.disks.len(), "no such disk");
        self.pending_failures.push((at, disk));
    }

    /// Whether a disk has failed.
    pub fn disk_is_dead(&self, disk: usize) -> bool {
        self.dead.get(disk).copied().unwrap_or(false)
    }

    /// Pending delayed replica writes (the NVRAM table occupancy, §3.4).
    pub fn nvram_entries(&self) -> usize {
        self.nvram
    }

    /// Drains all pending background propagation to completion and returns
    /// the number of replica writes performed.
    ///
    /// This is §3.4's crash-recovery path made explicit: the NVRAM table
    /// records which replicas still need copies, and recovery replays them
    /// — no data buffer needed, because the first copy of each write is
    /// already durable on disk.
    pub fn drain_background(&mut self) -> u64 {
        let before = self.report.delayed_propagated;
        let mut now = self.last_completion;
        for d in 0..self.disks.len() {
            self.try_dispatch(now, d);
        }
        while let Some((t, seq, ev)) = self.events.pop_entry() {
            now = t;
            let (wd, wk) = ev.witness_code();
            self.witness.fold(now.as_nanos(), seq, wd, wk);
            match ev {
                Event::Arrival => {}
                Event::DiskDone(d) => self.on_disk_done(now, d),
                Event::CacheDone(id) => self.complete_logical(now, id),
                Event::DiskFail(d) => self.on_disk_fail(now, d),
                Event::SlowStart(d) => self.on_slow_edge(d, true),
                Event::SlowEnd(d) => self.on_slow_edge(d, false),
                Event::Timeout { disk, id, track } => self.on_timeout(now, disk, id, track),
                Event::RebuildStart(d) => self.on_rebuild_start(now, d),
                Event::SpareDone(d) => self.on_spare_done(now, d),
            }
            if self.nvram == 0 && self.events.is_empty() {
                break;
            }
        }
        self.report.delayed_propagated - before
    }

    fn arm_failures(&mut self) {
        for (at, disk) in std::mem::take(&mut self.pending_failures) {
            self.events.push(at, Event::DiskFail(disk));
        }
        let n = self.disks.len();
        if let Some(ctx) = self.faults.as_mut() {
            if !ctx.armed {
                ctx.armed = true;
                for f in &ctx.plan.fail_stop {
                    if f.disk < n {
                        self.events.push(f.at, Event::DiskFail(f.disk));
                    }
                }
                for w in &ctx.plan.fail_slow {
                    if w.disk < n {
                        self.events.push(w.from, Event::SlowStart(w.disk));
                        self.events.push(w.until, Event::SlowEnd(w.disk));
                    }
                }
            }
        }
    }

    fn on_disk_fail(&mut self, now: SimTime, disk: usize) {
        if self.dead[disk] {
            return;
        }
        self.dead[disk] = true;
        // Unpropagated replicas bound for this disk are moot. Only true
        // delayed propagations hold NVRAM entries — rebuild chunk reads
        // ride the same queue without one.
        let dropped = self.delayed[disk]
            .ids()
            .iter()
            .filter(|&&id| {
                self.delayed[disk]
                    .get(id)
                    .is_some_and(|t| t.kind == TaskKind::Delayed)
            })
            .count();
        self.delayed[disk].clear();
        self.delayed_keys[disk].clear();
        self.nvram = self.nvram.saturating_sub(dropped);
        // Re-home the in-flight operation and the queue (in arrival order,
        // so surviving mirrors see the same relative order).
        let ids: Vec<TaskId> = self.fg[disk].ids().to_vec();
        let mut orphans: Vec<PendingTask> = ids
            .into_iter()
            .filter_map(|id| self.fg[disk].remove(id))
            .collect();
        self.dup_tags[disk].clear();
        if let Some(fly) = self.inflight[disk].take() {
            orphans.push(fly.task);
        }
        let mut touched = Vec::new();
        for task in orphans {
            if let Some(g) = task.dup {
                if self.dup_started.contains(g) {
                    // A surviving duplicate already ran (or runs) elsewhere.
                    continue;
                }
            }
            self.rehome_task(task, now, &mut touched);
        }
        touched.sort_unstable();
        touched.dedup();
        for d in touched {
            self.try_dispatch(now, d);
        }
        // Hot spare: arm the rebuild state machine if the plan provides
        // one for this disk, or re-issue a chunk whose copy source died
        // mid-read (chunks mid-write to the spare are unaffected — the
        // data already left the source).
        let mut reissue = false;
        if let Some(ctx) = self.faults.as_mut() {
            let spared = ctx.plan.fail_stop.iter().any(|f| f.disk == disk && f.spare);
            if spared && ctx.rebuild.is_none() {
                ctx.rebuild = Some(RebuildState {
                    disk,
                    started: now,
                    next: 0,
                    total: self.layout.per_disk_data_sectors(),
                    pending: 0,
                    source: usize::MAX,
                    copying: false,
                    writing: false,
                });
                self.events.push(
                    now + ctx.plan.rebuild.spare_delay,
                    Event::RebuildStart(disk),
                );
            } else if let Some(r) = ctx.rebuild.as_mut() {
                if r.copying && r.source == disk && r.pending > 0 && !r.writing {
                    r.pending = 0;
                    reissue = true;
                }
            }
        }
        if reissue {
            self.rebuild_issue_chunk(now);
        }
    }

    /// Re-dispatches a task from a failed disk onto surviving copies,
    /// recording the disks it lands on in `touched`.
    fn rehome_task(&mut self, task: PendingTask, now: SimTime, touched: &mut Vec<usize>) {
        match task.kind {
            TaskKind::Delayed => {}
            // A dropped chunk read is re-issued by `on_disk_fail`.
            TaskKind::Rebuild => {}
            TaskKind::WriteAll => {
                // The surviving mirrors hold their own WriteAll tasks; the
                // write only fails outright if no live copy remains.
                let any_live = self
                    .layout
                    .owner_disks(task.frag)
                    .into_iter()
                    .any(|d| !self.dead[d]);
                self.finish_part(now, task.logical, !any_live);
            }
            TaskKind::Read | TaskKind::WriteFirst => {
                let mut groups = std::mem::take(&mut self.group_scratch);
                groups.clear();
                self.layout.write_groups_into(task.frag, &mut groups);
                let dr = self.layout.shape().dr.max(1) as usize;
                compact_live_groups(&mut groups, 0, dr, &self.dead);
                if groups.is_empty() {
                    self.finish_part(now, task.logical, true);
                } else {
                    self.dispatch_mirrored(
                        task.logical,
                        task.frag,
                        task.write,
                        task.kind,
                        &groups,
                        now,
                        touched,
                    );
                }
                groups.clear();
                self.group_scratch = groups;
            }
        }
        self.recycle(task);
    }

    /// Returns a completed task's shell (with its buffers) to the pool.
    fn recycle(&mut self, task: PendingTask) {
        if self.task_pool.len() < TASK_POOL_CAP {
            self.task_pool.push(task);
        }
    }

    /// Marks one part of a logical request done (optionally failed).
    fn finish_part(&mut self, now: SimTime, logical: u64, failed: bool) {
        if self.logicals.dec_part(logical, failed) == Some(true) {
            self.complete_logical(now, logical);
        }
    }

    /// The planned layout (for inspection).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Replays an open-loop trace to completion and reports.
    pub fn run_trace(&mut self, trace: &Trace) -> RunReport {
        self.run_source(trace)
    }

    /// Replays any [`RequestSource`] — a [`Trace`] or a shared
    /// struct-of-arrays [`mimd_workload::WorkloadArena`] — as an open-loop
    /// stream. The walk is an allocation-free index cursor: each arrival
    /// event materializes one request from the source's columns and
    /// schedules the next.
    pub fn run_source<S: RequestSource + ?Sized>(&mut self, source: &S) -> RunReport {
        self.arm_failures();
        let n = source.len();
        let mut cursor = 0usize;
        if n != 0 {
            self.events.push(source.get(0).arrival, Event::Arrival);
        }
        while let Some((now, seq, ev)) = self.events.pop_entry() {
            let (wd, wk) = ev.witness_code();
            self.witness.fold(now.as_nanos(), seq, wd, wk);
            match ev {
                Event::Arrival => {
                    let r = source.get(cursor);
                    cursor += 1;
                    if cursor < n {
                        self.events.push(source.get(cursor).arrival, Event::Arrival);
                    }
                    self.submit(now, r.op, r.lbn, r.sectors);
                }
                Event::DiskDone(d) => self.on_disk_done(now, d),
                Event::CacheDone(id) => self.complete_logical(now, id),
                Event::DiskFail(d) => self.on_disk_fail(now, d),
                Event::SlowStart(d) => self.on_slow_edge(d, true),
                Event::SlowEnd(d) => self.on_slow_edge(d, false),
                Event::Timeout { disk, id, track } => self.on_timeout(now, disk, id, track),
                Event::RebuildStart(d) => self.on_rebuild_start(now, d),
                Event::SpareDone(d) => self.on_spare_done(now, d),
            }
            if cursor == n && self.logicals.is_empty() {
                break;
            }
        }
        self.finish_report()
    }

    /// Runs an Iometer-style closed loop: keeps `outstanding` requests in
    /// flight until `completions` requests have finished.
    pub fn run_closed_loop(
        &mut self,
        spec: &IometerSpec,
        outstanding: usize,
        completions: u64,
    ) -> RunReport {
        self.arm_failures();
        self.closed_loop = Some(ClosedLoop {
            spec: *spec,
            target: completions,
            issued: outstanding as u64,
        });
        for i in 0..outstanding {
            let (op, lbn, sectors) = spec.next_at(&mut self.rng, i as u64);
            self.submit(SimTime::from_nanos(i as u64), op, lbn, sectors);
        }
        while let Some((now, seq, ev)) = self.events.pop_entry() {
            let (wd, wk) = ev.witness_code();
            self.witness.fold(now.as_nanos(), seq, wd, wk);
            match ev {
                Event::Arrival => {}
                Event::DiskDone(d) => self.on_disk_done(now, d),
                Event::CacheDone(id) => self.complete_logical(now, id),
                Event::DiskFail(d) => self.on_disk_fail(now, d),
                Event::SlowStart(d) => self.on_slow_edge(d, true),
                Event::SlowEnd(d) => self.on_slow_edge(d, false),
                Event::Timeout { disk, id, track } => self.on_timeout(now, disk, id, track),
                Event::RebuildStart(d) => self.on_rebuild_start(now, d),
                Event::SpareDone(d) => self.on_spare_done(now, d),
            }
            if self.report.completed >= completions {
                break;
            }
        }
        self.finish_report()
    }

    fn finish_report(&mut self) -> RunReport {
        self.report.sim_time = self.last_completion.saturating_since(SimTime::ZERO);
        self.report.witness = self.witness.value();
        self.witness = DetWitness::new();
        if let Some(c) = &self.cache {
            self.report.cache_hits = c.hits();
            self.report.cache_misses = c.misses();
        }
        if let Some(ctx) = self.faults.as_mut() {
            self.report.faults = std::mem::replace(
                &mut ctx.report,
                report::FaultReport {
                    active: true,
                    ..report::FaultReport::default()
                },
            );
        }
        std::mem::take(&mut self.report)
    }

    fn submit(&mut self, now: SimTime, op: Op, lbn: u64, sectors: u32) {
        let id = self.next_logical;
        self.next_logical += 1;

        // Memory cache front-end: full-hit reads never reach the disks;
        // writes leave their blocks resident but still go to disk.
        if let Some(c) = self.cache.as_mut() {
            if op == Op::Read {
                if c.lookup_range(lbn, sectors) {
                    self.logicals.insert(
                        id,
                        Logical {
                            arrival: now,
                            op,
                            parts: 0,
                            lbn,
                            sectors,
                            failed: false,
                        },
                    );
                    self.events
                        .push(now + self.cache_hit_time, Event::CacheDone(id));
                    return;
                }
            } else {
                c.insert_range(lbn, sectors);
            }
        }

        // Plan the request into reusable scratch buffers: fragments, then
        // per-fragment flat replica groups (runs of Dr per mirror disk,
        // groups on failed disks compacted away in place). One part per
        // task actually enqueued; a fragment with no surviving copy marks
        // the whole request failed.
        let mut frags = std::mem::take(&mut self.frag_scratch);
        let mut reps = std::mem::take(&mut self.plan_replicas);
        let mut plan = std::mem::take(&mut self.plan_scratch);
        frags.clear();
        reps.clear();
        plan.clear();
        self.layout.fragments_into(lbn, sectors, &mut frags);
        let dr = self.layout.shape().dr.max(1) as usize;
        let mut parts = 0u32;
        let mut failed = false;
        for &frag in &frags {
            let start = reps.len();
            self.layout.write_groups_into(frag, &mut reps);
            compact_live_groups(&mut reps, start, dr, &self.dead);
            let len = reps.len() - start;
            if len == 0 {
                failed = true;
            } else if op.is_write() && self.cfg.write_mode == WriteMode::Foreground {
                parts += (len / dr) as u32;
            } else {
                parts += 1;
            }
            plan.push((frag, start as u32, len as u32));
        }
        self.logicals.insert(
            id,
            Logical {
                arrival: now,
                op,
                parts,
                lbn,
                sectors,
                failed,
            },
        );
        if parts == 0 {
            // Nothing survives to service this request. Complete through
            // the event queue rather than recursing: in a closed loop a
            // direct call would replenish synchronously and, with every
            // copy dead, recurse once per remaining completion.
            self.events.push(now, Event::CacheDone(id));
        } else {
            let mut touched = std::mem::take(&mut self.touched_scratch);
            touched.clear();
            for &(frag, start, len) in &plan {
                if len == 0 {
                    continue;
                }
                let groups = &reps[start as usize..(start + len) as usize];
                if op.is_write() && self.cfg.write_mode == WriteMode::Foreground {
                    for replicas in groups.chunks_exact(dr) {
                        let disk = replicas[0].disk;
                        let task =
                            self.make_task(id, frag, true, TaskKind::WriteAll, replicas, now);
                        self.enqueue(disk, task);
                        touched.push(disk);
                    }
                } else {
                    // Reads and background-mode first-copy writes share the
                    // mirror dispatch heuristic.
                    let kind = if op.is_write() {
                        TaskKind::WriteFirst
                    } else {
                        TaskKind::Read
                    };
                    self.dispatch_mirrored(
                        id,
                        frag,
                        op.is_write(),
                        kind,
                        groups,
                        now,
                        &mut touched,
                    );
                }
            }
            touched.sort_unstable();
            touched.dedup();
            for &disk in &touched {
                self.try_dispatch(now, disk);
            }
            touched.clear();
            self.touched_scratch = touched;
        }
        frags.clear();
        self.frag_scratch = frags;
        reps.clear();
        self.plan_replicas = reps;
        plan.clear();
        self.plan_scratch = plan;
    }

    /// Builds a task over `replicas`, reusing a pooled shell when one is
    /// available so the steady state allocates nothing.
    fn make_task(
        &mut self,
        logical: u64,
        frag: Fragment,
        write: bool,
        kind: TaskKind,
        replicas: &[Replica],
        now: SimTime,
    ) -> PendingTask {
        let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
        t.logical = logical;
        t.frag = frag;
        t.write = write;
        t.kind = kind;
        t.targets.clear();
        t.targets.extend(replicas.iter().map(|r| r.target));
        t.meta.clear();
        t.meta
            .extend(replicas.iter().map(|r| (r.replica, r.mirror)));
        t.enqueued = now;
        t.dup = None;
        t.key = (frag.lbn, 0, 0);
        t.attempt = 0;
        t.track = 0;
        t
    }

    /// Dispatches a read (or first-copy write), steering it away from
    /// disks inside a fail-slow window first when the plan asks for
    /// redirection and a healthy copy exists — the fault layer's only
    /// dispatch-path hook.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_mirrored(
        &mut self,
        logical: u64,
        frag: Fragment,
        write: bool,
        kind: TaskKind,
        groups: &[Replica],
        now: SimTime,
        touched: &mut Vec<usize>,
    ) {
        let dr = self.layout.shape().dr.max(1) as usize;
        let mut filtered: Option<Vec<Replica>> = None;
        if !write && groups.len() > dr {
            if let Some(ctx) = self.faults.as_mut() {
                if ctx.plan.redirect && ctx.any_slow() {
                    let mut buf = std::mem::take(&mut ctx.redirect_scratch);
                    buf.clear();
                    for g in groups.chunks_exact(dr) {
                        if ctx.slow_now.get(g[0].disk).copied().unwrap_or(0) == 0 {
                            buf.extend_from_slice(g);
                        }
                    }
                    if !buf.is_empty() && buf.len() < groups.len() {
                        ctx.report.redirects += 1;
                        filtered = Some(buf);
                    } else {
                        // Every copy (or none) is slow: no steering to do.
                        buf.clear();
                        ctx.redirect_scratch = buf;
                    }
                }
            }
        }
        if let Some(mut buf) = filtered {
            self.dispatch_groups(logical, frag, write, kind, &buf, now, touched);
            buf.clear();
            if let Some(ctx) = self.faults.as_mut() {
                ctx.redirect_scratch = buf;
            }
        } else {
            self.dispatch_groups(logical, frag, write, kind, groups, now, touched);
        }
    }

    /// Dispatches a read (or first-copy write) according to the mirror
    /// heuristic of §3.3, pushing the disks touched onto `touched`.
    ///
    /// `groups` is the flat dead-filtered replica buffer: runs of `Dr`
    /// replicas, one run per surviving mirror disk.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_groups(
        &mut self,
        logical: u64,
        frag: Fragment,
        write: bool,
        kind: TaskKind,
        groups: &[Replica],
        now: SimTime,
        touched: &mut Vec<usize>,
    ) {
        let dr = self.layout.shape().dr.max(1) as usize;
        let ngroups = groups.len() / dr;
        if ngroups == 1 || self.cfg.mirror_policy == MirrorPolicy::Static {
            let idx = if ngroups == 1 {
                0
            } else {
                ((frag.lbn / self.cfg.stripe_unit as u64)
                    / (self.cfg.shape.ds as u64 * self.cfg.shape.dr as u64)
                    % ngroups as u64) as usize
            };
            let replicas = &groups[idx * dr..(idx + 1) * dr];
            let disk = replicas[0].disk;
            let task = self.make_task(logical, frag, write, kind, replicas, now);
            self.enqueue(disk, task);
            touched.push(disk);
            return;
        }

        // Idle owners first: send to the idle head closest to a copy.
        let idle = groups
            .chunks_exact(dr)
            .filter(|g| {
                let d = g[0].disk;
                self.inflight[d].is_none() && self.fg[d].is_empty()
            })
            .min_by_key(|g| {
                let d = g[0].disk;
                g.iter()
                    .map(|r| {
                        self.disks[d]
                            .estimate(now, &r.target, write)
                            .positioning()
                            .as_nanos()
                    })
                    .min()
                    .unwrap_or(u64::MAX)
            });
        if let Some(replicas) = idle {
            let disk = replicas[0].disk;
            let task = self.make_task(logical, frag, write, kind, replicas, now);
            self.enqueue(disk, task);
            touched.push(disk);
            return;
        }

        // All owners busy: duplicate into every drive queue; the first disk
        // to start it wins and the rest are cancelled.
        let dup = self.next_dup;
        self.next_dup += 1;
        for replicas in groups.chunks_exact(dr) {
            let disk = replicas[0].disk;
            let mut t = self.make_task(logical, frag, write, kind, replicas, now);
            t.dup = Some(dup);
            self.enqueue(disk, t);
            touched.push(disk);
        }
    }

    fn enqueue(&mut self, disk: usize, mut task: PendingTask) {
        // Arm a simulated-time timeout on single-queued reads (mirror
        // duplicates already carry their own cancellation machinery). The
        // deadline backs off exponentially with the task's attempt count.
        let mut arm = None;
        if let Some(ctx) = self.faults.as_mut() {
            if ctx.plan.retry.enabled() && task.kind == TaskKind::Read && task.dup.is_none() {
                ctx.next_track += 1;
                task.track = ctx.next_track;
                arm = Some((
                    task.enqueued + ctx.plan.retry.timeout_for(task.attempt),
                    task.track,
                ));
            }
        }
        let dup = task.dup;
        let id = self.fg[disk].insert(task);
        if let Some(g) = dup {
            self.dup_tags[disk].push((g, id));
        }
        if let Some((at, track)) = arm {
            self.events.push(at, Event::Timeout { disk, id, track });
        }
    }

    fn push_delayed(&mut self, disk: usize, replica: &Replica, frag: Fragment, now: SimTime) {
        if self.dead[disk] {
            return;
        }
        let key = (frag.lbn, replica.replica, replica.mirror);
        if self.cfg.coalesce_delayed {
            if let Some(&id) = self.delayed_keys[disk].get(&key) {
                // A newer write to the same block supersedes the pending
                // propagation: "we can safely discard unfinished updates
                // from previous writes" (§3.4). The update keeps the
                // task's arrival position, as the in-place mutation did.
                let target = replica.target;
                let meta = (replica.replica, replica.mirror);
                let live = self.delayed[disk].replace_with(id, |t| {
                    t.targets.clear();
                    t.targets.push(target);
                    t.meta.clear();
                    t.meta.push(meta);
                    t.enqueued = now;
                });
                if live {
                    self.report.delayed_coalesced += 1;
                    return;
                }
                // A desynced key (never expected) falls through to a
                // fresh insert, which re-registers it below.
            }
        }
        let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
        t.logical = u64::MAX;
        t.frag = frag;
        t.write = true;
        t.kind = TaskKind::Delayed;
        t.targets.clear();
        t.targets.push(replica.target);
        t.meta.clear();
        t.meta.push((replica.replica, replica.mirror));
        t.enqueued = now;
        t.dup = None;
        t.key = key;
        t.attempt = 0;
        t.track = 0;
        let id = self.delayed[disk].insert(t);
        if self.cfg.coalesce_delayed {
            self.delayed_keys[disk].insert(key, id);
        }
        self.nvram += 1;
        self.report.nvram_peak = self.report.nvram_peak.max(self.nvram);
    }

    fn try_dispatch(&mut self, now: SimTime, disk: usize) {
        if self.inflight[disk].is_some() {
            return;
        }
        // Purge mirror duplicates another disk already started. The tag
        // list scans only this disk's duplicates, not the whole queue.
        if !self.dup_tags[disk].is_empty() {
            let started = &self.dup_started;
            let queue = &mut self.fg[disk];
            let pool = &mut self.task_pool;
            self.dup_tags[disk].retain(|&(g, id)| {
                if started.contains(g) {
                    if let Some(t) = queue.remove(id) {
                        if pool.len() < TASK_POOL_CAP {
                            pool.push(t);
                        }
                    }
                    return false;
                }
                // Drop tags whose task already dispatched from here.
                queue.get(id).is_some()
            });
        }

        // Delayed writes run when the foreground queue is empty, or are
        // forced out when the NVRAM table crosses its threshold (§3.4).
        let force_delayed = self.nvram >= self.cfg.nvram_threshold;
        let use_delayed =
            (self.fg[disk].is_empty() || force_delayed) && !self.delayed[disk].is_empty();
        let queue = if use_delayed {
            &self.delayed[disk]
        } else {
            &self.fg[disk]
        };
        let Some((id, candidate)) = queue.pick(
            &self.disks[disk],
            now,
            &mut self.look[disk],
            self.cfg.slack,
            SCHED_WINDOW,
        ) else {
            return;
        };
        let task = if use_delayed {
            self.delayed[disk].remove(id)
        } else {
            self.fg[disk].remove(id)
        };
        let Some(task) = task else {
            return; // Unreachable: the pick came from this queue.
        };
        if task.kind == TaskKind::Delayed {
            self.delayed_keys[disk].remove(&task.key);
        }
        if let Some(g) = task.dup {
            self.dup_started.insert(g);
        }

        // Service the chosen target (plus follow-on replicas for a
        // foreground multi-replica write).
        let chosen = &task.targets[candidate];
        let predicted = self.disks[disk].estimate(now, chosen, task.write).total();
        let first = self.disks[disk].begin(now, chosen, task.write);
        let mut end = now + first.total();

        // Table-2 accounting: predicted vs realised access time.
        let pr = &mut self.report.prediction;
        pr.requests += 1;
        if first.missed_rotation {
            pr.misses += 1;
        }
        let actual_us = first.total().as_micros_f64();
        if !first.missed_rotation {
            // Misses are tabulated separately (Table 2's first row); the
            // error moments describe the on-target population, matching
            // the paper's "essentially only two types of requests".
            pr.error.push(actual_us - predicted.as_micros_f64());
        }
        pr.predicted_us.push(predicted.as_micros_f64());
        pr.actual_us.push(actual_us);
        if !matches!(task.kind, TaskKind::Delayed | TaskKind::Rebuild) {
            self.report.seek_ms.push(first.seek.as_millis_f64());
            self.report.rotation_ms.push(first.rotation.as_millis_f64());
            self.report.transfer_ms.push(first.transfer.as_millis_f64());
            self.report
                .queue_wait_ms
                .push(now.saturating_since(task.enqueued).as_millis_f64());
        }

        if task.kind == TaskKind::WriteAll && task.targets.len() > 1 {
            // Walk the remaining rotational replicas greedily: at each step
            // write the replica reachable soonest (§3.4). The scratch
            // buffer lives on the sim so a chained write allocates nothing.
            let mut rest = std::mem::take(&mut self.write_scratch);
            rest.clear();
            rest.extend(
                task.targets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != candidate)
                    .map(|(_, t)| *t),
            );
            while let Some((i, _)) = rest.iter().enumerate().min_by_key(|(_, t)| {
                self.disks[disk]
                    .estimate_chained(end, t, true)
                    .total()
                    .as_nanos()
            }) {
                let b = self.disks[disk].begin_chained(end, &rest[i], true);
                end += b.total();
                rest.swap_remove(i);
            }
            self.write_scratch = rest;
        }

        self.report.phys_requests += 1;
        self.inflight[disk] = Some(InFlight {
            task,
            chosen: candidate,
        });
        self.events.push(end, Event::DiskDone(disk));
    }

    fn on_disk_done(&mut self, now: SimTime, disk: usize) {
        let Some(fly) = self.inflight[disk].take() else {
            return;
        };
        if fly.task.kind == TaskKind::Rebuild {
            self.on_rebuild_read_done(now, disk, fly.task);
            return;
        }
        // Transient media errors surface at completion time, drawn from
        // the dedicated fault stream (foreground operations only; delayed
        // propagations re-run from the NVRAM table on a real array).
        if let Some(ctx) = self.faults.as_mut() {
            if ctx.plan.media.enabled() && fly.task.kind != TaskKind::Delayed {
                let rate = if fly.task.kind == TaskKind::Read {
                    ctx.plan.media.read_rate
                } else {
                    ctx.plan.media.write_rate
                };
                if rate > 0.0 && ctx.rng.chance(rate) {
                    ctx.report.media_errors += 1;
                    self.on_media_error(now, disk, fly.task);
                    return;
                }
            }
        }
        match fly.task.kind {
            TaskKind::Rebuild => {}
            TaskKind::Delayed => {
                self.nvram = self.nvram.saturating_sub(1);
                self.report.delayed_propagated += 1;
            }
            TaskKind::Read | TaskKind::WriteAll | TaskKind::WriteFirst => {
                if fly.task.kind == TaskKind::WriteFirst {
                    // The first copy is durable; queue the remaining
                    // Dr*Dm - 1 copies for background propagation.
                    let written = fly.task.meta[fly.chosen];
                    let mut reps = std::mem::take(&mut self.group_scratch);
                    reps.clear();
                    self.layout.write_groups_into(fly.task.frag, &mut reps);
                    for r in &reps {
                        if (r.replica, r.mirror) == written {
                            continue;
                        }
                        self.push_delayed(r.disk, r, fly.task.frag, now);
                    }
                    reps.clear();
                    self.group_scratch = reps;
                }
                self.finish_part(now, fly.task.logical, false);
            }
        }
        self.recycle(fly.task);
        self.try_dispatch(now, disk);
    }

    /// A read's simulated-time timeout fired. If the read still sits in
    /// the foreground queue it is pulled and retried (alternate replica
    /// where one survives); a read already dispatched or completed makes
    /// this a no-op — the generation-tagged id resolves to nothing.
    fn on_timeout(&mut self, now: SimTime, disk: usize, id: TaskId, track: u64) {
        if self.dead[disk] {
            return; // the queue died with the disk; rehoming handled it
        }
        if !self.fg[disk]
            .get(id)
            .is_some_and(|t| t.track == track && t.kind == TaskKind::Read)
        {
            return;
        }
        let Some(task) = self.fg[disk].remove(id) else {
            return;
        };
        if let Some(ctx) = self.faults.as_mut() {
            ctx.report.timeouts += 1;
        }
        self.retry_or_fail(now, task, Some(disk));
    }

    /// Re-issues a read that timed out or returned a media error, on an
    /// alternate surviving replica group when one exists (rotating with
    /// the attempt count, skewed away from `exclude`); a read that
    /// exhausts the attempt budget completes as failed.
    fn retry_or_fail(&mut self, now: SimTime, mut task: PendingTask, exclude: Option<usize>) {
        let budget = self
            .faults
            .as_ref()
            .map_or(0, |ctx| ctx.plan.retry.max_retries);
        if task.attempt >= budget {
            if let Some(ctx) = self.faults.as_mut() {
                ctx.report.unrecoverable += 1;
            }
            self.finish_part(now, task.logical, true);
            self.recycle(task);
            return;
        }
        task.attempt += 1;
        let mut groups = std::mem::take(&mut self.group_scratch);
        groups.clear();
        self.layout.write_groups_into(task.frag, &mut groups);
        let dr = self.layout.shape().dr.max(1) as usize;
        compact_live_groups(&mut groups, 0, dr, &self.dead);
        let ngroups = groups.len() / dr;
        if ngroups == 0 {
            if let Some(ctx) = self.faults.as_mut() {
                ctx.report.unrecoverable += 1;
            }
            self.finish_part(now, task.logical, true);
            self.recycle(task);
        } else {
            let mut pick = task.attempt as usize % ngroups;
            if ngroups > 1 && exclude == Some(groups[pick * dr].disk) {
                pick = (pick + 1) % ngroups;
            }
            let replicas = &groups[pick * dr..(pick + 1) * dr];
            let disk = replicas[0].disk;
            task.targets.clear();
            task.targets.extend(replicas.iter().map(|r| r.target));
            task.meta.clear();
            task.meta
                .extend(replicas.iter().map(|r| (r.replica, r.mirror)));
            task.enqueued = now;
            task.dup = None;
            if let Some(ctx) = self.faults.as_mut() {
                ctx.report.retries += 1;
            }
            self.enqueue(disk, task);
            self.try_dispatch(now, disk);
        }
        groups.clear();
        self.group_scratch = groups;
    }

    /// Handles a transient media error on a completed foreground
    /// operation. Reads retry on an alternate replica; writes retry in
    /// place (their replica set is bound to a specific disk); either way
    /// an exhausted budget fails the logical request.
    fn on_media_error(&mut self, now: SimTime, disk: usize, mut task: PendingTask) {
        match task.kind {
            TaskKind::Read => self.retry_or_fail(now, task, Some(disk)),
            TaskKind::WriteAll | TaskKind::WriteFirst => {
                let budget = self
                    .faults
                    .as_ref()
                    .map_or(0, |ctx| ctx.plan.retry.max_retries);
                if task.attempt >= budget {
                    if let Some(ctx) = self.faults.as_mut() {
                        ctx.report.unrecoverable += 1;
                    }
                    self.finish_part(now, task.logical, true);
                    self.recycle(task);
                } else {
                    task.attempt += 1;
                    task.enqueued = now;
                    task.dup = None;
                    if let Some(ctx) = self.faults.as_mut() {
                        ctx.report.retries += 1;
                    }
                    self.enqueue(disk, task);
                }
            }
            TaskKind::Delayed | TaskKind::Rebuild => self.recycle(task),
        }
        self.try_dispatch(now, disk);
    }

    /// Tracks a fail-slow window opening (`start`) or closing on a disk;
    /// overlapping windows nest via a counter.
    fn on_slow_edge(&mut self, disk: usize, start: bool) {
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(c) = ctx.slow_now.get_mut(disk) {
                if start {
                    *c += 1;
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }
    }

    /// The hot spare for a failed disk came online: start copying.
    fn on_rebuild_start(&mut self, now: SimTime, disk: usize) {
        let ready = self
            .faults
            .as_mut()
            .and_then(|ctx| ctx.rebuild.as_mut())
            .is_some_and(|r| {
                if r.disk == disk && !r.copying {
                    r.copying = true;
                    true
                } else {
                    false
                }
            });
        if ready {
            self.rebuild_issue_chunk(now);
        }
    }

    /// Queues the next rebuild chunk: one replica-track read on a
    /// surviving mirror, riding its *delayed* queue so foreground work
    /// keeps winning the disk — the §3.4 idle-time throttle reused as the
    /// rebuild rate limiter. Sources rotate chunk-by-chunk across the
    /// survivors of the spare's mirror column.
    fn rebuild_issue_chunk(&mut self, now: SimTime) {
        let dm = self.layout.shape().dm.max(1) as usize;
        let Some((spare, next, total, chunk)) = self.faults.as_ref().and_then(|ctx| {
            ctx.rebuild
                .as_ref()
                .filter(|r| r.copying && r.pending == 0)
                .map(|r| (r.disk, r.next, r.total, ctx.plan.rebuild.chunk_sectors))
        }) else {
            return;
        };
        if next >= total {
            return; // completion is accounted in `on_spare_done`
        }
        let mirror = spare % dm;
        let base = spare - mirror;
        let live: Vec<usize> = (0..dm)
            .map(|m| base + m)
            .filter(|&d| d != spare && !self.dead[d])
            .collect();
        if live.is_empty() {
            // No survivor left to copy from: the rebuild is abandoned and
            // the spare slot stays dead.
            if let Some(ctx) = self.faults.as_mut() {
                ctx.rebuild = None;
            }
            return;
        }
        let source = live[(next / u64::from(chunk.max(1))) as usize % live.len()];
        let src_mirror = (source % dm) as u32;
        let Some((target, span)) = self.layout.rebuild_extent(next, 0, src_mirror, chunk) else {
            // Off the mapped data (never expected before `total`): stop.
            if let Some(ctx) = self.faults.as_mut() {
                if let Some(r) = ctx.rebuild.as_mut() {
                    r.next = r.total;
                }
            }
            return;
        };
        let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
        t.logical = u64::MAX;
        t.frag = Fragment {
            lbn: u64::MAX,
            sectors: span,
        };
        t.write = false;
        t.kind = TaskKind::Rebuild;
        t.targets.clear();
        t.targets.push(target);
        t.meta.clear();
        t.meta.push((0, src_mirror as u8));
        t.enqueued = now;
        t.dup = None;
        t.key = (u64::MAX, 0, 0);
        t.attempt = 0;
        t.track = 0;
        self.delayed[source].insert(t);
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(r) = ctx.rebuild.as_mut() {
                r.source = source;
                r.pending = u64::from(span);
                r.writing = false;
            }
        }
        self.try_dispatch(now, source);
    }

    /// A rebuild chunk read completed on the copy source: chain all `Dr`
    /// replica writes of the chunk onto the spare (greedily, like a
    /// foreground multi-replica write) and account the chunk when the
    /// spare finishes.
    fn on_rebuild_read_done(&mut self, now: SimTime, source: usize, task: PendingTask) {
        self.recycle(task);
        let dr = self.layout.shape().dr.max(1);
        let dm = self.layout.shape().dm.max(1) as usize;
        let Some((spare, next, chunk)) = self.faults.as_ref().and_then(|ctx| {
            ctx.rebuild
                .as_ref()
                .filter(|r| r.copying && r.source == source && r.pending > 0 && !r.writing)
                .map(|r| (r.disk, r.next, ctx.plan.rebuild.chunk_sectors))
        }) else {
            // The rebuild moved on (e.g. abandoned); drop the stale read.
            self.try_dispatch(now, source);
            return;
        };
        let spare_mirror = (spare % dm) as u32;
        let mut end = now;
        let mut wrote = false;
        let mut rest = std::mem::take(&mut self.write_scratch);
        rest.clear();
        for k in 0..dr {
            if let Some((t, _)) = self.layout.rebuild_extent(next, k, spare_mirror, chunk) {
                rest.push(t);
            }
        }
        while let Some((i, _)) = rest.iter().enumerate().min_by_key(|(_, t)| {
            self.disks[spare]
                .estimate_chained(end, t, true)
                .total()
                .as_nanos()
        }) {
            let b = if wrote {
                self.disks[spare].begin_chained(end, &rest[i], true)
            } else {
                self.disks[spare].begin(end, &rest[i], true)
            };
            end += b.total();
            wrote = true;
            rest.swap_remove(i);
        }
        self.write_scratch = rest;
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(r) = ctx.rebuild.as_mut() {
                r.writing = true;
            }
        }
        self.report.phys_requests += 1;
        self.events.push(end, Event::SpareDone(spare));
        self.try_dispatch(now, source);
    }

    /// The spare finished one chunk: advance the rebuild, and on the last
    /// chunk flip the disk back to live — restoring full replica spacing,
    /// which the debug invariant re-checks at the flip.
    fn on_spare_done(&mut self, now: SimTime, disk: usize) {
        let mut finished = None;
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(r) = ctx.rebuild.as_mut() {
                if r.disk == disk && r.writing {
                    r.next += r.pending;
                    r.pending = 0;
                    r.writing = false;
                    ctx.report.rebuild_chunks += 1;
                    if r.next >= r.total {
                        finished = Some(r.started);
                    }
                }
            }
            if finished.is_some() {
                ctx.rebuild = None;
                ctx.report.rebuilds_completed += 1;
            }
        }
        match finished {
            Some(started) => {
                if let Some(ctx) = self.faults.as_mut() {
                    ctx.report.rebuild_duration = now.saturating_since(started);
                }
                // Every replica is back in place: return the disk to
                // service for subsequent requests.
                self.dead[disk] = false;
                #[cfg(debug_assertions)]
                self.layout.check_rebuilt_disk(disk);
                self.try_dispatch(now, disk);
            }
            None => self.rebuild_issue_chunk(now),
        }
    }

    fn complete_logical(&mut self, now: SimTime, id: u64) {
        let Some(l) = self.logicals.take(id) else {
            return;
        };
        let response = now.saturating_since(l.arrival);
        self.report.completed += 1;
        self.last_completion = self.last_completion.max_of(now);
        if l.failed {
            self.report.failed_requests += 1;
        }
        if !l.failed && l.op.is_latency_visible() {
            let ms = response.as_millis_f64();
            self.report.response_ms.push(ms);
            self.report.response_samples_ms.push(ms);
            if l.op == Op::Read {
                self.report.read_ms.push(ms);
            } else {
                self.report.write_ms.push(ms);
            }
            // Degraded-mode windows: classify each visible completion by
            // the array's health at completion time.
            if let Some(ctx) = self.faults.as_mut() {
                let set = if ctx.rebuild.as_ref().is_some_and(|r| r.copying) {
                    &mut ctx.report.rebuilding_ms
                } else if ctx.any_slow() || self.dead.iter().any(|&d| d) {
                    &mut ctx.report.degraded_ms
                } else {
                    &mut ctx.report.healthy_ms
                };
                set.push(ms);
            }
        }
        if l.op == Op::Read {
            if let Some(c) = self.cache.as_mut() {
                c.insert_range(l.lbn, l.sectors);
            }
        }

        // Closed loop: replace the completed request to hold the
        // outstanding count.
        if let Some(cl) = self.closed_loop.as_mut() {
            if self.report.completed < cl.target {
                let spec = cl.spec;
                let seq = cl.issued;
                cl.issued += 1;
                let (op, lbn, sectors) = spec.next_at(&mut self.rng, seq);
                self.submit(now, op, lbn, sectors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_workload::SyntheticSpec;

    fn quick_cfg(shape: Shape) -> EngineConfig {
        EngineConfig::new(shape).with_perfect_knowledge()
    }

    #[test]
    fn single_disk_trace_completes_all_requests() {
        let trace = SyntheticSpec::cello_base().generate(1, 500);
        let mut sim = ArraySim::new(quick_cfg(Shape::striping(1)), trace.data_sectors).unwrap();
        let r = sim.run_trace(&trace);
        assert_eq!(r.completed, 500);
        assert!(r.mean_response_ms() > 2.0, "mean {}", r.mean_response_ms());
        assert!(
            r.mean_response_ms() < 100.0,
            "mean {}",
            r.mean_response_ms()
        );
        assert!(r.phys_requests >= 500);
    }

    #[test]
    fn striping_reduces_response_time() {
        let trace = SyntheticSpec::cello_base().generate(2, 1_500);
        let run = |shape: Shape| {
            let mut sim = ArraySim::new(quick_cfg(shape), trace.data_sectors).unwrap();
            sim.run_trace(&trace).mean_response_ms()
        };
        let one = run(Shape::striping(1));
        let six = run(Shape::striping(6));
        assert!(six < one, "1 disk {one} vs 6-stripe {six}");
    }

    #[test]
    fn sr_array_beats_striping_on_cello() {
        let trace = SyntheticSpec::cello_base().generate(3, 1_500);
        let run = |shape: Shape| {
            let mut sim = ArraySim::new(quick_cfg(shape), trace.data_sectors).unwrap();
            sim.run_trace(&trace).mean_response_ms()
        };
        let stripe = run(Shape::striping(6));
        let sr = run(Shape::sr_array(2, 3).unwrap());
        assert!(sr < stripe, "SR {sr} vs stripe {stripe}");
    }

    #[test]
    fn foreground_writes_gate_on_all_mirrors() {
        let trace = SyntheticSpec::tpcc().generate(4, 300);
        let bg = {
            let mut sim = ArraySim::new(
                quick_cfg(Shape::raid10(4).unwrap()).with_write_mode(WriteMode::Background),
                trace.data_sectors,
            )
            .unwrap();
            sim.run_trace(&trace)
        };
        let fg = {
            let mut sim = ArraySim::new(
                quick_cfg(Shape::raid10(4).unwrap()).with_write_mode(WriteMode::Foreground),
                trace.data_sectors,
            )
            .unwrap();
            sim.run_trace(&trace)
        };
        assert!(
            fg.write_ms.mean() > bg.write_ms.mean(),
            "fg {} vs bg {}",
            fg.write_ms.mean(),
            bg.write_ms.mean()
        );
        // Background mode propagates replicas off the critical path.
        assert!(bg.delayed_propagated > 0);
        assert_eq!(fg.delayed_propagated, 0);
    }

    #[test]
    fn delayed_writes_eventually_propagate_and_coalesce() {
        let spec = SyntheticSpec::cello_base();
        let trace = spec.generate(5, 2_000);
        let mut sim = ArraySim::new(
            quick_cfg(Shape::sr_array(2, 3).unwrap()),
            trace.data_sectors,
        )
        .unwrap();
        let r = sim.run_trace(&trace);
        assert!(r.delayed_propagated > 0);
        assert!(r.nvram_peak > 0);
    }

    #[test]
    fn closed_loop_maintains_throughput_accounting() {
        let spec = IometerSpec::random_read_512(16_000_000);
        let mut sim = ArraySim::new(quick_cfg(Shape::sr_array(2, 3).unwrap()), 16_000_000).unwrap();
        let r = sim.run_closed_loop(&spec, 8, 2_000);
        assert_eq!(r.completed, 2_000);
        let iops = r.throughput_iops();
        // Six 10k RPM disks with 2 ms overheads land in the hundreds.
        assert!(iops > 300.0 && iops < 5_000.0, "iops {iops}");
    }

    #[test]
    fn deeper_queues_raise_throughput() {
        let spec = IometerSpec::microbench(16_000_000, 1.0);
        let run = |q: usize| {
            let mut sim =
                ArraySim::new(quick_cfg(Shape::sr_array(3, 2).unwrap()), 16_000_000).unwrap();
            sim.run_closed_loop(&spec, q, 3_000).throughput_iops()
        };
        let shallow = run(2);
        let deep = run(32);
        assert!(deep > shallow * 1.2, "q2 {shallow} vs q32 {deep}");
    }

    #[test]
    fn cache_hits_reduce_response() {
        let trace = SyntheticSpec::cello_base().generate(6, 2_000);
        let no_cache = {
            let mut sim = ArraySim::new(quick_cfg(Shape::striping(2)), trace.data_sectors).unwrap();
            sim.run_trace(&trace)
        };
        let cached = {
            let cfg = quick_cfg(Shape::striping(2)).with_cache(CacheConfig {
                bytes: 256 << 20,
                hit_time: SimDuration::from_micros(100),
            });
            let mut sim = ArraySim::new(cfg, trace.data_sectors).unwrap();
            sim.run_trace(&trace)
        };
        assert!(cached.cache_hits > 0, "no hits recorded");
        assert!(
            cached.mean_response_ms() < no_cache.mean_response_ms(),
            "cached {} vs raw {}",
            cached.mean_response_ms(),
            no_cache.mean_response_ms()
        );
    }

    #[test]
    fn mirror_duplication_cancels_losers() {
        // Saturate a 2-way mirror with reads; duplicates must never double
        // count completions.
        let spec = IometerSpec::random_read_512(8_000_000);
        let mut sim = ArraySim::new(quick_cfg(Shape::mirror(2)), 8_000_000).unwrap();
        let r = sim.run_closed_loop(&spec, 16, 2_000);
        assert_eq!(r.completed, 2_000);
    }

    #[test]
    fn tracked_knowledge_reports_prediction_stats() {
        let trace = SyntheticSpec::cello_base().generate(7, 1_000);
        let cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap());
        let mut sim = ArraySim::new(cfg, trace.data_sectors).unwrap();
        let mut r = sim.run_trace(&trace);
        assert!(r.prediction.requests > 1_000 - 10);
        // Table 2 territory: sub-percent misses, tens-of-us errors.
        assert!(
            r.prediction.miss_rate() < 0.05,
            "miss {}",
            r.prediction.miss_rate()
        );
        let d = r.prediction.demerit_us();
        assert!(d < 500.0, "demerit {d}");
    }

    #[test]
    fn drain_background_empties_the_nvram_table() {
        let trace = SyntheticSpec::cello_base().generate(9, 1_500);
        let mut sim = ArraySim::new(
            quick_cfg(Shape::sr_array(2, 3).unwrap()),
            trace.data_sectors,
        )
        .unwrap();
        let _ = sim.run_trace(&trace);
        // The run ends when foreground work completes; some replica
        // propagation may still be queued (a crash here would rely on the
        // NVRAM table).
        let pending = sim.nvram_entries();
        let drained = sim.drain_background();
        assert_eq!(sim.nvram_entries(), 0);
        assert!(drained >= pending as u64);
    }

    #[test]
    fn drain_background_is_a_noop_when_clean() {
        let trace = SyntheticSpec::cello_base().generate(10, 200);
        let mut sim = ArraySim::new(quick_cfg(Shape::striping(2)), trace.data_sectors).unwrap();
        let _ = sim.run_trace(&trace);
        // Striping makes no replicas: nothing to drain.
        assert_eq!(sim.nvram_entries(), 0);
        assert_eq!(sim.drain_background(), 0);
    }

    #[test]
    fn read_ahead_accelerates_sequential_streams() {
        let spec = IometerSpec::sequential_read(8_000_000, 128);
        let run = |read_ahead: bool| {
            let mut cfg = quick_cfg(Shape::striping(2));
            cfg.read_ahead = read_ahead;
            let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
            sim.run_closed_loop(&spec, 2, 2_000).throughput_iops()
        };
        let cold = run(false);
        let buffered = run(true);
        assert!(
            buffered > cold * 1.2,
            "read-ahead {buffered} vs cold {cold}"
        );
    }

    #[test]
    fn nvram_threshold_forces_delayed_writes_out() {
        // A tiny NVRAM table must bound the delayed-write backlog even
        // under continuous foreground pressure.
        let spec = IometerSpec::microbench(8_000_000, 0.3); // Write-heavy.
        let mut cfg = quick_cfg(Shape::sr_array(2, 3).unwrap());
        cfg.nvram_threshold = 20;
        let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
        let r = sim.run_closed_loop(&spec, 16, 3_000);
        assert!(
            r.nvram_peak <= 20 + 32,
            "NVRAM peaked at {} despite a 20-entry threshold",
            r.nvram_peak
        );
        assert!(r.delayed_propagated > 0);
    }

    #[test]
    fn static_mirror_policy_completes_and_underperforms() {
        let spec = IometerSpec::microbench(8_000_000, 1.0);
        let run = |policy: MirrorPolicy| {
            let mut cfg = quick_cfg(Shape::mirror(3));
            cfg.mirror_policy = policy;
            let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
            sim.run_closed_loop(&spec, 6, 3_000)
        };
        let heuristic = run(MirrorPolicy::IdleOrDuplicate);
        let fixed = run(MirrorPolicy::Static);
        assert_eq!(heuristic.completed, 3_000);
        assert_eq!(fixed.completed, 3_000);
        assert!(heuristic.throughput_iops() > fixed.throughput_iops());
    }

    #[test]
    fn spanning_requests_wait_for_every_fragment() {
        // A request spanning many stripe units completes exactly once and
        // responds no faster than a single-unit request.
        let trace = {
            use mimd_workload::Request;
            let reqs = vec![
                Request {
                    id: 0,
                    arrival: SimTime::ZERO,
                    op: Op::Read,
                    lbn: 100,
                    sectors: 1_000, // Spans 9 units across 4 disks.
                },
                Request {
                    id: 0,
                    arrival: SimTime::ZERO,
                    op: Op::Read,
                    lbn: 5_000_000,
                    sectors: 8,
                },
            ];
            mimd_workload::Trace::new("span", 8_000_000, reqs)
        };
        let mut sim = ArraySim::new(quick_cfg(Shape::striping(4)), 8_000_000).unwrap();
        let r = sim.run_trace(&trace);
        assert_eq!(r.completed, 2);
        // Both requests recorded; the big one is the slower of the two.
        assert!(r.response_ms.max() >= r.response_ms.min());
        assert!(r.phys_requests > 9);
    }

    #[test]
    fn synchronized_striped_mirror_cuts_read_rotation() {
        // §2.5: staggered copies on synchronized spindles halve the
        // rotational wait of a 2-way mirror read.
        let spec = IometerSpec::random_read_512(8_000_000);
        let run = |stagger: bool| {
            let mut cfg = quick_cfg(Shape::raid10(4).unwrap());
            cfg.mirror_stagger = stagger;
            cfg.sync_spindles = true;
            let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
            sim.run_closed_loop(&spec, 1, 3_000).rotation_ms.mean()
        };
        let plain = run(false);
        let staggered = run(true);
        // R/2 = 3 ms down toward R/4 = 1.5 ms.
        assert!((plain - 3.0).abs() < 0.3, "plain rot {plain}");
        assert!(staggered < 2.0, "staggered rot {staggered}");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let trace = SyntheticSpec::tpcc().generate(8, 800);
        let run = || {
            let mut sim = ArraySim::new(
                EngineConfig::new(Shape::sr_array(2, 3).unwrap()),
                trace.data_sectors,
            )
            .unwrap();
            sim.run_trace(&trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.phys_requests, b.phys_requests);
        assert!((a.mean_response_ms() - b.mean_response_ms()).abs() < 1e-12);
    }
}
