//! The array simulation engine: MimdRAID's disk-configuration, scheduling,
//! and delayed-write layers (§3.1, §3.3, §3.4) over simulated drives.
//!
//! One [`ArraySim`] drives an array of simulated disks through a
//! deterministic event loop. It implements:
//!
//! - logical→physical translation through [`Layout`] (64 KiB stripe units);
//! - per-disk *drive queues* with a pluggable [`Policy`] (§3.3);
//! - the mirror read heuristic: send to the closest idle copy, else
//!   duplicate into every owner's queue and cancel the losers once one
//!   disk starts the request (§3.3);
//! - foreground multi-replica writes that walk a block's rotational
//!   replicas greedily within (ideally) one revolution (§2.2, §3.4);
//! - delayed background propagation with per-disk delayed-write queues, an
//!   NVRAM metadata table with a forced-flush threshold, and write
//!   coalescing for data that die young (§3.4);
//! - an optional LRU memory cache in front of the array (§4.1, Figure 11).
//!
//! # Sharded execution
//!
//! The engine is split along the array's mirror-group boundary: one
//! [`shard::Shard`] per group owns that group's disks, drive queues,
//! calendar wheel, fault context, and named RNG streams (every physical
//! consequence of a fragment — replicas, duplicates, retries, rebuild
//! traffic — stays inside its group). `ArraySim` is the *conductor*: it
//! routes each request's fragments to the owning shards as timestamped
//! [`shard::Submission`]s and folds the shards' completion/health
//! [`shard::Note`]s back into logical-request accounting.
//!
//! Two drive modes, chosen by configuration only (never by thread count):
//!
//! - **structured** (open-loop replays without a memory cache): arrivals
//!   are pre-scanned, every shard runs to quiescence independently —
//!   in parallel across up to [`ArraySim::set_parallelism`] worker
//!   threads — and the notes are merged in canonical
//!   `(time, kind, shard, emission)` order. Reports and the determinism
//!   witness are byte-identical at any worker count by construction.
//! - **interleaved** (closed loops, cached runs): a serial conductor
//!   loop steps whichever of {next arrival, cache completions, shards}
//!   is earliest, with a fixed tie order, so feedback (queue-depth
//!   replenishment, cache state) sees one global timeline.
//!
//! Construct one `ArraySim` per experiment run; `run_trace` (open loop) and
//! `run_closed_loop` (Iometer-style) both consume the instance's state.

pub mod cache;
pub mod report;
mod shard;

use std::collections::VecDeque;

use mimd_disk::DiskParams;
use mimd_disk::{Geometry, PositionKnowledge, SeekProfile, SimDisk, TimingPath};
use mimd_sim::{DetWitness, EventQueue, SimDuration, SimRng, SimTime};
use mimd_workload::{IometerSpec, Op, RequestSource, Trace};

use crate::config::Shape;
use crate::faults::FaultPlan;
use crate::layout::{
    Fragment, Layout, LayoutError, ParityConfig, Replica, ReplicaPlacement, DEFAULT_STRIPE_UNIT,
};
use crate::sched::Policy;

use cache::LruCache;
use report::{FaultReport, RunReport};
use shard::{HealthKind, Note, Nvram, PopRecord, Shard, Submission};

/// How write replicas are propagated (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Every copy is written before the request completes (worst case of
    /// Equation (3); the Figure 13 regime).
    Foreground,
    /// The closest copy is written in the foreground; the rest propagate
    /// from per-disk delayed-write queues during idle time.
    Background,
}

/// How a mirrored read picks a disk when several hold the data (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorPolicy {
    /// The paper's heuristic: immediate dispatch to the closest idle owner,
    /// else duplicate into every owner's queue.
    IdleOrDuplicate,
    /// Static assignment by block address (ablation baseline).
    Static,
}

/// Memory-cache configuration for the Figure 11 comparison.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Cache size in bytes.
    pub bytes: u64,
    /// Service time of a cache hit.
    pub hit_time: SimDuration,
}

/// Full configuration of an array simulation.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Array shape `Ds × Dr × Dm`.
    pub shape: Shape,
    /// Per-disk scheduling policy.
    pub policy: Policy,
    /// Replica-propagation mode.
    pub write_mode: WriteMode,
    /// Drive parameter set.
    pub disk_params: DiskParams,
    /// Timing fidelity.
    pub timing: TimingPath,
    /// Head-position knowledge (perfect vs software-tracked).
    pub knowledge: PositionKnowledge,
    /// Stripe unit in sectors.
    pub stripe_unit: u32,
    /// Stagger mirror copies rotationally (§2.5 striped mirror).
    pub mirror_stagger: bool,
    /// Synchronise spindles across disks (else random phase offsets).
    pub sync_spindles: bool,
    /// Mirrored-read dispatch policy.
    pub mirror_policy: MirrorPolicy,
    /// NVRAM delayed-write table threshold (§3.4: 10 000 entries).
    pub nvram_threshold: usize,
    /// Coalesce superseded delayed writes (§3.4 "data that die young").
    pub coalesce_delayed: bool,
    /// Optional front-end memory cache.
    pub cache: Option<CacheConfig>,
    /// Scheduling slack: replicas predicted closer than this are treated
    /// as a full revolution away (§3.2's k-sector conservatism). Only
    /// meaningful under tracked position knowledge.
    pub slack: SimDuration,
    /// Rotational-replica placement (§2.2; `Random` is an ablation).
    pub replica_placement: ReplicaPlacement,
    /// Enable the drives' track read-ahead buffers (off by default, as in
    /// the paper's experiments; see the read-ahead ablation).
    pub read_ahead: bool,
    /// Random seed (spindle phases, head-tracking error).
    pub seed: u64,
    /// Fault-injection plan. The default (empty) plan disables the fault
    /// layer entirely: no extra RNG streams, no extra events, byte-identical
    /// reports (value-neutrality).
    pub faults: FaultPlan,
    /// XOR-parity organization (RAID 4/5) over the striped space. `None`
    /// (the default) leaves every replica/mirror path exactly as before —
    /// the same value-neutrality contract as `faults`.
    pub parity: Option<ParityConfig>,
}

impl EngineConfig {
    /// A configuration with the paper's defaults: RSATF on SR-Arrays and
    /// SATF elsewhere, background propagation, detailed timing, software
    /// head tracking at Table 2's accuracy, 64 KiB stripe unit,
    /// unsynchronised spindles, and a 10 000-entry NVRAM table.
    pub fn new(shape: Shape) -> Self {
        EngineConfig {
            shape,
            policy: Policy::default_for_dr(shape.dr),
            write_mode: WriteMode::Background,
            disk_params: DiskParams::st39133lwv(),
            timing: TimingPath::Detailed,
            knowledge: PositionKnowledge::Tracked {
                mean_error_us: 3.0,
                std_error_us: 31.0,
            },
            stripe_unit: DEFAULT_STRIPE_UNIT,
            mirror_stagger: false,
            sync_spindles: false,
            mirror_policy: MirrorPolicy::IdleOrDuplicate,
            nvram_threshold: 10_000,
            coalesce_delayed: true,
            cache: None,
            // Four sectors' worth at the outer zone, per §3.2.
            slack: SimDuration::from_micros(110),
            replica_placement: ReplicaPlacement::Even,
            read_ahead: false,
            seed: 42,
            faults: FaultPlan::default(),
            parity: None,
        }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the write-propagation mode.
    pub fn with_write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = mode;
        self
    }

    /// Uses perfect head-position knowledge (and drops the slack, which
    /// only hedges prediction error).
    pub fn with_perfect_knowledge(mut self) -> Self {
        self.knowledge = PositionKnowledge::Perfect;
        self.slack = SimDuration::ZERO;
        self
    }

    /// Installs a memory cache.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overlays an XOR-parity organization (RAID 4/5) on the array.
    pub fn with_parity(mut self, parity: ParityConfig) -> Self {
        self.parity = Some(parity);
        self
    }
}

/// Bound on how many queued entries a policy examines per decision, keeping
/// scheduling cost finite in saturated (beyond-knee) open-loop runs.
pub(crate) const SCHED_WINDOW: usize = 128;

/// Recycled task shells kept at most this many; beyond it, completed
/// tasks drop their buffers instead of hoarding them.
pub(crate) const TASK_POOL_CAP: usize = 256;

/// Compacts `reps[start..]` — runs of `dr` replicas sharing one disk —
/// down to the runs whose disk is still alive, preserving order.
pub(crate) fn compact_live_groups(reps: &mut Vec<Replica>, start: usize, dr: usize, dead: &[bool]) {
    let mut w = start;
    let mut r = start;
    while r < reps.len() {
        if !dead[reps[r].disk] {
            if w != r {
                for k in 0..dr {
                    reps[w + k] = reps[r + k];
                }
            }
            w += dr;
        }
        r += dr;
    }
    reps.truncate(w);
}

#[derive(Debug, Clone, Copy)]
struct Logical {
    arrival: SimTime,
    op: Op,
    /// Outstanding *fragments*: each routed fragment resolves to exactly
    /// one completion [`Note`] from its owning shard.
    parts: u32,
    lbn: u64,
    sectors: u32,
    /// Whether any copy of this request was lost to a disk failure.
    failed: bool,
}

/// Packed [`Logical`] flags: bits 0–1 the op tag, bit 2 failed, bit 3
/// slot-live.
mod lflag {
    use mimd_workload::Op;

    pub const FAILED: u8 = 1 << 2;
    pub const LIVE: u8 = 1 << 3;

    pub fn op_bits(op: Op) -> u8 {
        match op {
            Op::Read => 0,
            Op::SyncWrite => 1,
            Op::AsyncWrite => 2,
        }
    }

    pub fn op_of(flags: u8) -> Op {
        match flags & 0b11 {
            0 => Op::Read,
            1 => Op::SyncWrite,
            _ => Op::AsyncWrite,
        }
    }
}

/// Live logical requests, addressed by their sequential id.
///
/// Ids are issued monotonically, so the live set always sits in a
/// contiguous id window: ring buffers indexed by `id - base` give O(1)
/// insert/lookup/remove with no per-entry node allocation (the original
/// `BTreeMap` cost one node split per ~handful of requests on the hot
/// path). Storage is struct-of-arrays: the completion hot path only
/// touches `parts` + `flags` (5 bytes/slot instead of a 40-byte struct),
/// so part-countdown traffic stays in a fraction of the cache lines, and
/// the full record is only gathered when the request actually completes.
#[derive(Debug, Default)]
struct LogicalTable {
    base: u64,
    arrivals: VecDeque<SimTime>,
    lbns: VecDeque<u64>,
    sectors: VecDeque<u32>,
    parts: VecDeque<u32>,
    flags: VecDeque<u8>,
    live: usize,
}

impl LogicalTable {
    fn insert(&mut self, id: u64, l: Logical) {
        debug_assert_eq!(id, self.base + self.arrivals.len() as u64);
        self.arrivals.push_back(l.arrival);
        self.lbns.push_back(l.lbn);
        self.sectors.push_back(l.sectors);
        self.parts.push_back(l.parts);
        self.flags.push_back(
            lflag::op_bits(l.op) | if l.failed { lflag::FAILED } else { 0 } | lflag::LIVE,
        );
        self.live += 1;
    }

    fn index(&self, id: u64) -> Option<usize> {
        let idx = id.checked_sub(self.base)? as usize;
        (idx < self.flags.len() && self.flags[idx] & lflag::LIVE != 0).then_some(idx)
    }

    /// Counts one part done (optionally failed); returns whether the
    /// request's last part just finished. One indexed lookup touching only
    /// the two hot columns.
    fn dec_part(&mut self, id: u64, failed: bool) -> Option<bool> {
        let idx = self.index(id)?;
        if failed {
            self.flags[idx] |= lflag::FAILED;
        }
        let p = self.parts[idx].saturating_sub(1);
        self.parts[idx] = p;
        Some(p == 0)
    }

    /// Removes a live request, gathering its full record from the columns.
    fn take(&mut self, id: u64) -> Option<Logical> {
        let idx = self.index(id)?;
        let l = Logical {
            arrival: self.arrivals[idx],
            op: lflag::op_of(self.flags[idx]),
            parts: self.parts[idx],
            lbn: self.lbns[idx],
            sectors: self.sectors[idx],
            failed: self.flags[idx] & lflag::FAILED != 0,
        };
        self.flags[idx] = 0;
        self.live -= 1;
        // Trim the drained prefix so the window tracks the live ids.
        while self.flags.front() == Some(&0) {
            self.arrivals.pop_front();
            self.lbns.pop_front();
            self.sectors.pop_front();
            self.parts.pop_front();
            self.flags.pop_front();
            self.base += 1;
        }
        Some(l)
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// Conductor-level events: everything that completes without touching a
/// disk. Folded into the conductor's witness sub-stream with disk
/// `u32::MAX` and kind 2, as the pre-shard engine did.
#[derive(Debug, Clone, Copy)]
enum CondEvent {
    /// A cache hit (or a request with no reachable fragment) completes.
    CacheDone(u64),
}

struct ClosedLoop {
    spec: IometerSpec,
    target: u64,
    issued: u64,
}

/// Array-health counters maintained from shard [`Note::Health`] messages,
/// replacing the old engine's direct reads of global fault state. Each
/// visible completion is classified against these counters at its
/// completion instant.
#[derive(Debug, Default)]
struct HealthState {
    dead: u32,
    slow: u32,
    rebuilding: u32,
}

impl HealthState {
    fn apply(&mut self, kind: HealthKind, on: bool) {
        let c = match kind {
            HealthKind::Dead => &mut self.dead,
            HealthKind::Slow => &mut self.slow,
            HealthKind::Rebuilding => &mut self.rebuilding,
        };
        if on {
            *c += 1;
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// The array simulator.
///
/// # Examples
///
/// ```
/// use mimd_core::{ArraySim, EngineConfig, Shape};
/// use mimd_workload::SyntheticSpec;
///
/// let trace = SyntheticSpec::cello_base().generate(1, 200);
/// let cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap());
/// let mut sim = ArraySim::new(cfg, trace.data_sectors).unwrap();
/// let report = sim.run_trace(&trace);
/// assert_eq!(report.completed, 200);
/// assert!(report.mean_response_ms() > 0.0);
/// ```
pub struct ArraySim {
    cfg: EngineConfig,
    layout: Layout,
    /// One engine per mirror group, in group order.
    shards: Vec<Shard>,
    /// Per-shard NVRAM budgets (structured mode: the configured threshold
    /// split evenly, so the force-flush decision is shard-local).
    nvrams: Vec<Nvram>,
    /// The single global NVRAM table (interleaved mode: exact pre-shard
    /// threshold semantics).
    shared_nvram: Nvram,
    /// Conductor-level completions (cache hits, unreachable requests).
    events: EventQueue<CondEvent>,
    logicals: LogicalTable,
    next_logical: u64,
    cache: Option<LruCache>,
    cache_hit_time: SimDuration,
    /// Conductor stream: closed-loop workload draws only.
    rng: SimRng,
    report: RunReport,
    closed_loop: Option<ClosedLoop>,
    last_completion: SimTime,
    pending_failures: Vec<(SimTime, usize)>,
    /// Reusable fragment buffer for request planning. The flag marks a
    /// parity full-stripe write; it is always `false` without a parity
    /// organization.
    frag_scratch: Vec<(Fragment, bool)>,
    /// The conductor's witness sub-stream: arrivals (kind 0) and
    /// conductor completions (kind 2). Shard sub-streams are absorbed
    /// after it, in shard order, by `finish_report`.
    witness: DetWitness,
    cond_pops: u64,
    health: HealthState,
    faults_active: bool,
    parallelism: usize,
    last_run_events: u64,
    /// Which NVRAM tables the last run charged (for `drain_background`).
    structured_last: bool,
    capture: bool,
    cond_pop_log: Vec<PopRecord>,
}

impl ArraySim {
    /// Builds an array for `data_sectors` of logical data.
    pub fn new(cfg: EngineConfig, data_sectors: u64) -> Result<Self, LayoutError> {
        let geometry = Geometry::new(&cfg.disk_params);
        let mut layout = Layout::new(
            cfg.shape,
            &geometry,
            data_sectors,
            cfg.stripe_unit,
            cfg.mirror_stagger,
        )?
        .with_placement(cfg.replica_placement);
        if let Some(p) = cfg.parity {
            layout = layout.with_parity(p)?;
        }
        cfg.faults
            .validate(layout.disks())
            .map_err(LayoutError::InvalidFaultPlan)?;
        let n = layout.disks();
        // Calibrate the drive model once — the seek fit is a numeric
        // bisection costing ~1 ms — and stamp out per-disk copies. The
        // profile's lookup tables are Arc-shared across all spindles.
        let seek = SeekProfile::fit(&cfg.disk_params).map_err(LayoutError::InvalidDiskParams)?;
        // Disk-completion events land within a few rotations of "now"; a
        // calendar wheel sized to that horizon makes push/pop O(1). One
        // probe drive fixes the horizon for every shard.
        let probe = SimDisk::with_parts(
            &cfg.disk_params,
            geometry.clone(),
            seek.clone(),
            cfg.timing,
            cfg.knowledge,
            0,
        );
        let horizon_ns = 4 * probe.rotation_ns();
        let groups = layout.groups();
        let shards: Vec<Shard> = (0..groups)
            .map(|g| {
                Shard::new(
                    g, n, &layout, &cfg, &geometry, &seek, cfg.policy, horizon_ns,
                )
            })
            .collect();
        let cache = cfg.cache.as_ref().map(|c| LruCache::new(c.bytes));
        let cache_hit_time = cfg
            .cache
            .as_ref()
            .map(|c| c.hit_time)
            .unwrap_or(SimDuration::ZERO);
        let faults_active = !cfg.faults.is_empty();
        let shard_threshold = cfg.nvram_threshold.div_ceil(groups.max(1)).max(1);
        let rng = SimRng::named(cfg.seed, "engine");
        let shared_nvram = Nvram::new(cfg.nvram_threshold);
        Ok(ArraySim {
            layout,
            shards,
            nvrams: (0..groups).map(|_| Nvram::new(shard_threshold)).collect(),
            shared_nvram,
            events: EventQueue::with_horizon_ns(horizon_ns),
            cfg,
            logicals: LogicalTable::default(),
            next_logical: 0,
            cache,
            cache_hit_time,
            rng,
            report: RunReport::default(),
            closed_loop: None,
            last_completion: SimTime::ZERO,
            pending_failures: Vec::new(),
            frag_scratch: Vec::new(),
            witness: DetWitness::new(),
            cond_pops: 0,
            health: HealthState::default(),
            faults_active,
            parallelism: 1,
            last_run_events: 0,
            structured_last: true,
            capture: false,
            cond_pop_log: Vec::new(),
        })
    }

    /// Caps the worker threads that run shard engines concurrently in
    /// structured mode (default 1: fully serial). Reports and the
    /// determinism witness are byte-identical at any setting; pick the cap
    /// from the harness's thread budget when nesting inside parallel jobs
    /// so shards do not oversubscribe cores.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    /// Event pops across all shards and the conductor during the last
    /// completed run — the throughput denominator for engine scaling.
    pub fn last_run_events(&self) -> u64 {
        self.last_run_events
    }

    /// Test hook: record every event pop so equivalence tests can compare
    /// the exact pop stream across shard/worker configurations.
    #[doc(hidden)]
    pub fn set_pop_capture(&mut self, on: bool) {
        self.capture = on;
        for s in &mut self.shards {
            s.capture = on;
        }
    }

    /// Test hook: the captured pop stream as `(time, entity, seq, disk,
    /// kind)` records, conductor first (entity 0) then shards in order.
    #[doc(hidden)]
    pub fn take_pop_stream(&mut self) -> Vec<(u64, u32, u64, u32, u8)> {
        let mut out = Vec::new();
        for &(t, seq, d, k) in &self.cond_pop_log {
            out.push((t, 0, seq, d, k));
        }
        self.cond_pop_log.clear();
        for (c, s) in self.shards.iter_mut().enumerate() {
            for &(t, seq, d, k) in &s.pop_log {
                out.push((t, c as u32 + 1, seq, d, k));
            }
            s.pop_log.clear();
        }
        out
    }

    /// Schedules a disk failure before a run (fault injection).
    ///
    /// At `at`, the disk stops servicing: its in-flight and queued work is
    /// re-dispatched to surviving mirror copies where they exist, pending
    /// delayed propagations to it are dropped, and later requests whose
    /// only copies lived there complete as failed
    /// ([`RunReport::failed_requests`]).
    pub fn schedule_disk_failure(&mut self, at: SimTime, disk: usize) {
        assert!(disk < self.layout.disks(), "no such disk");
        self.pending_failures.push((at, disk));
    }

    /// Whether a disk has failed.
    pub fn disk_is_dead(&self, disk: usize) -> bool {
        let w = self.layout.disks_per_group().max(1);
        self.shards
            .get(disk / w)
            .is_some_and(|s| s.dead.get(disk).copied().unwrap_or(false))
    }

    /// Pending delayed replica writes (the NVRAM table occupancy, §3.4).
    pub fn nvram_entries(&self) -> usize {
        self.shared_nvram.count + self.nvrams.iter().map(|nv| nv.count).sum::<usize>()
    }

    /// Drains all pending background propagation to completion and returns
    /// the number of replica writes performed.
    ///
    /// This is §3.4's crash-recovery path made explicit: the NVRAM table
    /// records which replicas still need copies, and recovery replays them
    /// — no data buffer needed, because the first copy of each write is
    /// already durable on disk.
    pub fn drain_background(&mut self) -> u64 {
        let at = self.last_completion;
        let structured = self.structured_last;
        let lay = &self.layout;
        let shared = &mut self.shared_nvram;
        let mut total = 0u64;
        for (s, nv) in self.shards.iter_mut().zip(self.nvrams.iter_mut()) {
            let before = s.report.delayed_propagated;
            if structured {
                s.drain(lay, at, nv);
            } else {
                s.drain(lay, at, &mut *shared);
            }
            total += s.report.delayed_propagated - before;
        }
        self.pump_notes();
        total
    }

    /// Arms scheduled failures and the shards' fault plans (idempotent).
    fn arm_failures(&mut self) {
        let w = self.layout.disks_per_group().max(1);
        for (at, disk) in std::mem::take(&mut self.pending_failures) {
            self.shards[disk / w].schedule_failure(at, disk);
        }
        for s in &mut self.shards {
            s.arm();
        }
    }

    /// The planned layout (for inspection).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Replays an open-loop trace to completion and reports.
    pub fn run_trace(&mut self, trace: &Trace) -> RunReport {
        self.run_source(trace)
    }

    /// Replays any [`RequestSource`] — a [`Trace`] or a shared
    /// struct-of-arrays [`mimd_workload::WorkloadArena`] — as an open-loop
    /// stream. Without a memory cache the replay runs structured (shards
    /// in parallel); with one it runs interleaved, since cache hits are a
    /// cross-shard feedback path.
    pub fn run_source<S: RequestSource + ?Sized>(&mut self, source: &S) -> RunReport {
        self.arm_failures();
        if self.cache.is_none() {
            self.run_structured(source)
        } else {
            self.drive_interleaved(Some(source))
        }
    }

    /// Runs an Iometer-style closed loop: keeps `outstanding` requests in
    /// flight until `completions` requests have finished. Always
    /// interleaved — replenishment is inherently global feedback.
    pub fn run_closed_loop(
        &mut self,
        spec: &IometerSpec,
        outstanding: usize,
        completions: u64,
    ) -> RunReport {
        self.arm_failures();
        self.closed_loop = Some(ClosedLoop {
            spec: *spec,
            target: completions,
            issued: outstanding as u64,
        });
        for i in 0..outstanding {
            let (op, lbn, sectors) = spec.next_at(&mut self.rng, i as u64);
            self.submit(SimTime::from_nanos(i as u64), op, lbn, sectors);
        }
        self.pump_notes();
        self.drive_interleaved(None::<&Trace>)
    }

    /// Structured drive: pre-scan every arrival into per-shard submission
    /// lists, run each shard to quiescence (in parallel up to the worker
    /// cap), then merge the shards' notes in canonical order.
    fn run_structured<S: RequestSource + ?Sized>(&mut self, source: &S) -> RunReport {
        self.structured_last = true;
        let n = source.len();
        let groups = self.shards.len();
        let mut subs: Vec<Vec<Submission>> = vec![Vec::new(); groups];
        let mut frags = std::mem::take(&mut self.frag_scratch);
        for cursor in 0..n {
            let r = source.get(cursor);
            // Arrivals fold under the cursor index: the stream is fixed by
            // the trace alone, never by execution order.
            self.witness
                .fold(r.arrival.as_nanos(), cursor as u64, u32::MAX, 0);
            self.cond_pops += 1;
            if self.capture {
                self.cond_pop_log
                    .push((r.arrival.as_nanos(), cursor as u64, u32::MAX, 0));
            }
            let id = self.next_logical;
            self.next_logical += 1;
            let write = r.op.is_write();
            frags.clear();
            self.layout
                .plan_request(write, r.lbn, r.sectors, &mut frags);
            self.logicals.insert(
                id,
                Logical {
                    arrival: r.arrival,
                    op: r.op,
                    parts: frags.len() as u32,
                    lbn: r.lbn,
                    sectors: r.sectors,
                    failed: false,
                },
            );
            let fg_write = write && self.cfg.write_mode == WriteMode::Foreground;
            for &(frag, stripe) in &frags {
                subs[self.layout.group_of(frag)].push(Submission {
                    at: r.arrival,
                    logical: id,
                    frag,
                    write,
                    fg_write,
                    stripe,
                });
            }
        }
        frags.clear();
        self.frag_scratch = frags;

        // Shard-local NVRAM budgets: an even split of the configured
        // threshold, so no shard ever reads another's occupancy.
        let shard_threshold = self.cfg.nvram_threshold.div_ceil(groups.max(1)).max(1);
        for nv in &mut self.nvrams {
            *nv = Nvram::new(shard_threshold);
        }

        let workers = self.parallelism.min(groups).max(1);
        let lay = &self.layout;
        if workers <= 1 {
            // Serial fallback: same shards, same order, same results.
            for (i, s) in self.shards.iter_mut().enumerate() {
                s.run(lay, &subs[i], &mut self.nvrams[i]);
            }
        } else {
            let chunk = groups.div_ceil(workers);
            let shards = &mut self.shards;
            let nvrams = &mut self.nvrams;
            // simlint: allow(parallelism) — the conductor seam: shards are independent engines; their results merge deterministically below
            std::thread::scope(|scope| {
                for ((sh, nv), sb) in shards
                    .chunks_mut(chunk)
                    .zip(nvrams.chunks_mut(chunk))
                    .zip(subs.chunks(chunk))
                {
                    scope.spawn(move || {
                        for ((s, n), sub) in sh.iter_mut().zip(nv.iter_mut()).zip(sb.iter()) {
                            s.run(lay, sub, n);
                        }
                    });
                }
            });
        }

        self.merge_notes();
        self.finish_report()
    }

    /// Interleaved drive: one serial loop stepping whichever of {next
    /// arrival, conductor completions, shards} fires earliest. The tie
    /// order at equal instants is fixed — arrival, then conductor, then
    /// shards by index — so the timeline is reproducible.
    fn drive_interleaved<S: RequestSource + ?Sized>(&mut self, source: Option<&S>) -> RunReport {
        self.structured_last = false;
        let n = source.map_or(0, |s| s.len());
        let mut cursor = 0usize;
        loop {
            let mut best: Option<(SimTime, usize)> = None;
            if cursor < n {
                if let Some(s) = source {
                    best = Some((s.get(cursor).arrival, 0));
                }
            }
            if let Some(t) = self.events.peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, 1));
                }
            }
            for (c, s) in self.shards.iter().enumerate() {
                if let Some(t) = s.peek_time() {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, 2 + c));
                    }
                }
            }
            let Some((now, rank)) = best else {
                break;
            };
            match rank {
                0 => {
                    let Some(s) = source else { break };
                    let r = s.get(cursor);
                    self.witness
                        .fold(now.as_nanos(), cursor as u64, u32::MAX, 0);
                    self.cond_pops += 1;
                    if self.capture {
                        self.cond_pop_log
                            .push((now.as_nanos(), cursor as u64, u32::MAX, 0));
                    }
                    cursor += 1;
                    self.submit(now, r.op, r.lbn, r.sectors);
                }
                1 => {
                    let Some((t, seq, CondEvent::CacheDone(id))) = self.events.pop_entry() else {
                        break;
                    };
                    self.witness.fold(t.as_nanos(), seq, u32::MAX, 2);
                    self.cond_pops += 1;
                    if self.capture {
                        self.cond_pop_log.push((t.as_nanos(), seq, u32::MAX, 2));
                    }
                    self.complete_logical(t, id);
                }
                c => {
                    self.shards[c - 2].step(&self.layout, &mut self.shared_nvram);
                }
            }
            self.pump_notes();
            if let Some(cl) = self.closed_loop.as_ref() {
                if self.report.completed >= cl.target {
                    break;
                }
            } else if cursor == n && self.logicals.is_empty() {
                break;
            }
        }
        self.finish_report()
    }

    /// Whether a closed loop has hit its completion target (at which
    /// point the run must stop consuming completions, exactly as the
    /// pre-shard engine stopped popping events).
    fn closed_target_reached(&self) -> bool {
        self.closed_loop
            .as_ref()
            .is_some_and(|cl| self.report.completed >= cl.target)
    }

    /// Applies every queued shard note, in emission order, until the sweep
    /// finds none — iterative, so a completion whose replenishment fails
    /// immediately (all copies dead) cannot recurse. Stops at the closed
    /// loop's completion target, leaving later notes queued, so a chain of
    /// instantly-failing replenishments cannot overshoot the target.
    fn pump_notes(&mut self) {
        loop {
            if self.closed_target_reached() {
                return;
            }
            let mut any = false;
            for c in 0..self.shards.len() {
                if self.shards[c].notes.is_empty() {
                    continue;
                }
                any = true;
                let notes = std::mem::take(&mut self.shards[c].notes);
                let mut it = notes.iter();
                while let Some(&note) = it.next() {
                    self.apply_note(note);
                    if self.closed_target_reached() {
                        // Re-queue the unapplied tail ahead of any notes
                        // the application just emitted.
                        let mut rest: Vec<Note> = it.copied().collect();
                        rest.append(&mut self.shards[c].notes);
                        self.shards[c].notes = rest;
                        return;
                    }
                }
                let mut buf = notes;
                buf.clear();
                if self.shards[c].notes.is_empty() {
                    self.shards[c].notes = buf;
                }
            }
            if !any {
                break;
            }
        }
    }

    /// Structured-mode merge: orders all shards' notes by
    /// `(time, health-before-completion, shard, emission index)` — a total
    /// order fixed by the simulation content, independent of how shards
    /// were packed onto worker threads — and applies them.
    fn merge_notes(&mut self) {
        let mut merged: Vec<(SimTime, u8, u32, u32, Note)> = Vec::new();
        for (c, s) in self.shards.iter_mut().enumerate() {
            for (i, &note) in s.notes.iter().enumerate() {
                let (at, rank) = match note {
                    Note::Health { at, .. } => (at, 0u8),
                    Note::Part { at, .. } => (at, 1u8),
                };
                merged.push((at, rank, c as u32, i as u32, note));
            }
            s.notes.clear();
        }
        merged.sort_by_key(|&(at, rank, c, i, _)| (at, rank, c, i));
        for &(_, _, _, _, note) in &merged {
            self.apply_note(note);
        }
    }

    fn apply_note(&mut self, note: Note) {
        match note {
            Note::Health { kind, on, .. } => self.health.apply(kind, on),
            Note::Part {
                logical,
                at,
                failed,
            } => {
                if self.logicals.dec_part(logical, failed) == Some(true) {
                    self.complete_logical(at, logical);
                }
            }
        }
    }

    fn finish_report(&mut self) -> RunReport {
        self.report.sim_time = self.last_completion.saturating_since(SimTime::ZERO);
        // Combine the witness: the conductor's sub-stream first, then each
        // shard's, in shard order. Idle sub-streams are skipped, so a run
        // that popped nothing reports the empty digest.
        let mut combined = DetWitness::new();
        combined.absorb(0, &self.witness);
        let mut events = self.cond_pops;
        for (c, s) in self.shards.iter().enumerate() {
            combined.absorb(c as u32 + 1, &s.witness);
            events += s.pops;
        }
        self.report.witness = combined.value();
        self.last_run_events = events;
        self.witness = DetWitness::new();
        self.cond_pops = 0;
        if let Some(c) = &self.cache {
            self.report.cache_hits = c.hits();
            self.report.cache_misses = c.misses();
        }
        let shard_peaks: usize = self.nvrams.iter().map(|nv| nv.peak).sum();
        self.report.nvram_peak = self
            .report
            .nvram_peak
            .max(self.shared_nvram.peak + shard_peaks);
        self.shared_nvram.peak = 0;
        for nv in &mut self.nvrams {
            nv.peak = 0;
        }
        if self.faults_active {
            self.report.faults.active = true;
            for s in &mut self.shards {
                if let Some(ctx) = s.faults.as_mut() {
                    let fr = std::mem::replace(
                        &mut ctx.report,
                        FaultReport {
                            active: true,
                            ..FaultReport::default()
                        },
                    );
                    self.report.faults.merge_counters(&fr);
                }
            }
        }
        for s in &mut self.shards {
            let sr = std::mem::take(&mut s.report);
            self.report.merge_dispatch(&sr);
            s.witness = DetWitness::new();
            s.pops = 0;
        }
        self.closed_loop = None;
        std::mem::take(&mut self.report)
    }

    /// Plans one logical request: cache front-end, then one submission per
    /// fragment to the shard owning its mirror group.
    fn submit(&mut self, now: SimTime, op: Op, lbn: u64, sectors: u32) {
        let id = self.next_logical;
        self.next_logical += 1;

        // Memory cache front-end: full-hit reads never reach the disks;
        // writes leave their blocks resident but still go to disk.
        if let Some(c) = self.cache.as_mut() {
            if op == Op::Read {
                if c.lookup_range(lbn, sectors) {
                    self.logicals.insert(
                        id,
                        Logical {
                            arrival: now,
                            op,
                            parts: 0,
                            lbn,
                            sectors,
                            failed: false,
                        },
                    );
                    self.events
                        .push(now + self.cache_hit_time, CondEvent::CacheDone(id));
                    return;
                }
            } else {
                c.insert_range(lbn, sectors);
            }
        }

        let write = op.is_write();
        let mut frags = std::mem::take(&mut self.frag_scratch);
        frags.clear();
        self.layout.plan_request(write, lbn, sectors, &mut frags);
        self.logicals.insert(
            id,
            Logical {
                arrival: now,
                op,
                parts: frags.len() as u32,
                lbn,
                sectors,
                failed: false,
            },
        );
        if frags.is_empty() {
            // A zero-fragment request (never expected) completes through
            // the conductor queue rather than recursing.
            self.events.push(now, CondEvent::CacheDone(id));
        } else {
            let fg_write = write && self.cfg.write_mode == WriteMode::Foreground;
            for &(frag, stripe) in &frags {
                let g = self.layout.group_of(frag);
                self.shards[g].submit_frag(&self.layout, now, id, frag, write, fg_write, stripe);
                self.shards[g].kick(now, &mut self.shared_nvram);
            }
        }
        frags.clear();
        self.frag_scratch = frags;
    }

    fn complete_logical(&mut self, now: SimTime, id: u64) {
        let Some(l) = self.logicals.take(id) else {
            return;
        };
        let response = now.saturating_since(l.arrival);
        self.report.completed += 1;
        self.last_completion = self.last_completion.max_of(now);
        if l.failed {
            self.report.failed_requests += 1;
        }
        if !l.failed && l.op.is_latency_visible() {
            let ms = response.as_millis_f64();
            self.report.response_ms.push(ms);
            self.report.response_samples_ms.push(ms);
            if l.op == Op::Read {
                self.report.read_ms.push(ms);
            } else {
                self.report.write_ms.push(ms);
            }
            // Degraded-mode windows: classify each visible completion by
            // the array's health at completion time.
            if self.faults_active {
                let set = if self.health.rebuilding > 0 {
                    &mut self.report.faults.rebuilding_ms
                } else if self.health.dead > 0 || self.health.slow > 0 {
                    &mut self.report.faults.degraded_ms
                } else {
                    &mut self.report.faults.healthy_ms
                };
                set.push(ms);
            }
        }
        if l.op == Op::Read {
            if let Some(c) = self.cache.as_mut() {
                c.insert_range(l.lbn, l.sectors);
            }
        }

        // Closed loop: replace the completed request to hold the
        // outstanding count.
        if let Some(cl) = self.closed_loop.as_mut() {
            if self.report.completed < cl.target {
                let spec = cl.spec;
                let seq = cl.issued;
                cl.issued += 1;
                let (op, lbn, sectors) = spec.next_at(&mut self.rng, seq);
                self.submit(now, op, lbn, sectors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_workload::SyntheticSpec;

    fn quick_cfg(shape: Shape) -> EngineConfig {
        EngineConfig::new(shape).with_perfect_knowledge()
    }

    #[test]
    fn single_disk_trace_completes_all_requests() {
        let trace = SyntheticSpec::cello_base().generate(1, 500);
        let mut sim = ArraySim::new(quick_cfg(Shape::striping(1)), trace.data_sectors).unwrap();
        let r = sim.run_trace(&trace);
        assert_eq!(r.completed, 500);
        assert!(r.mean_response_ms() > 2.0, "mean {}", r.mean_response_ms());
        assert!(
            r.mean_response_ms() < 100.0,
            "mean {}",
            r.mean_response_ms()
        );
        assert!(r.phys_requests >= 500);
    }

    #[test]
    fn striping_reduces_response_time() {
        let trace = SyntheticSpec::cello_base().generate(2, 1_500);
        let run = |shape: Shape| {
            let mut sim = ArraySim::new(quick_cfg(shape), trace.data_sectors).unwrap();
            sim.run_trace(&trace).mean_response_ms()
        };
        let one = run(Shape::striping(1));
        let six = run(Shape::striping(6));
        assert!(six < one, "1 disk {one} vs 6-stripe {six}");
    }

    #[test]
    fn sr_array_beats_striping_on_cello() {
        let trace = SyntheticSpec::cello_base().generate(3, 1_500);
        let run = |shape: Shape| {
            let mut sim = ArraySim::new(quick_cfg(shape), trace.data_sectors).unwrap();
            sim.run_trace(&trace).mean_response_ms()
        };
        let stripe = run(Shape::striping(6));
        let sr = run(Shape::sr_array(2, 3).unwrap());
        assert!(sr < stripe, "SR {sr} vs stripe {stripe}");
    }

    #[test]
    fn foreground_writes_gate_on_all_mirrors() {
        let trace = SyntheticSpec::tpcc().generate(4, 300);
        let bg = {
            let mut sim = ArraySim::new(
                quick_cfg(Shape::raid10(4).unwrap()).with_write_mode(WriteMode::Background),
                trace.data_sectors,
            )
            .unwrap();
            sim.run_trace(&trace)
        };
        let fg = {
            let mut sim = ArraySim::new(
                quick_cfg(Shape::raid10(4).unwrap()).with_write_mode(WriteMode::Foreground),
                trace.data_sectors,
            )
            .unwrap();
            sim.run_trace(&trace)
        };
        assert!(
            fg.write_ms.mean() > bg.write_ms.mean(),
            "fg {} vs bg {}",
            fg.write_ms.mean(),
            bg.write_ms.mean()
        );
        // Background mode propagates replicas off the critical path.
        assert!(bg.delayed_propagated > 0);
        assert_eq!(fg.delayed_propagated, 0);
    }

    #[test]
    fn delayed_writes_eventually_propagate_and_coalesce() {
        let spec = SyntheticSpec::cello_base();
        let trace = spec.generate(5, 2_000);
        let mut sim = ArraySim::new(
            quick_cfg(Shape::sr_array(2, 3).unwrap()),
            trace.data_sectors,
        )
        .unwrap();
        let r = sim.run_trace(&trace);
        assert!(r.delayed_propagated > 0);
        assert!(r.nvram_peak > 0);
    }

    #[test]
    fn closed_loop_maintains_throughput_accounting() {
        let spec = IometerSpec::random_read_512(16_000_000);
        let mut sim = ArraySim::new(quick_cfg(Shape::sr_array(2, 3).unwrap()), 16_000_000).unwrap();
        let r = sim.run_closed_loop(&spec, 8, 2_000);
        assert_eq!(r.completed, 2_000);
        let iops = r.throughput_iops();
        // Six 10k RPM disks with 2 ms overheads land in the hundreds.
        assert!(iops > 300.0 && iops < 5_000.0, "iops {iops}");
    }

    #[test]
    fn deeper_queues_raise_throughput() {
        let spec = IometerSpec::microbench(16_000_000, 1.0);
        let run = |q: usize| {
            let mut sim =
                ArraySim::new(quick_cfg(Shape::sr_array(3, 2).unwrap()), 16_000_000).unwrap();
            sim.run_closed_loop(&spec, q, 3_000).throughput_iops()
        };
        let shallow = run(2);
        let deep = run(32);
        assert!(deep > shallow * 1.2, "q2 {shallow} vs q32 {deep}");
    }

    #[test]
    fn cache_hits_reduce_response() {
        let trace = SyntheticSpec::cello_base().generate(6, 2_000);
        let no_cache = {
            let mut sim = ArraySim::new(quick_cfg(Shape::striping(2)), trace.data_sectors).unwrap();
            sim.run_trace(&trace)
        };
        let cached = {
            let cfg = quick_cfg(Shape::striping(2)).with_cache(CacheConfig {
                bytes: 256 << 20,
                hit_time: SimDuration::from_micros(100),
            });
            let mut sim = ArraySim::new(cfg, trace.data_sectors).unwrap();
            sim.run_trace(&trace)
        };
        assert!(cached.cache_hits > 0, "no hits recorded");
        assert!(
            cached.mean_response_ms() < no_cache.mean_response_ms(),
            "cached {} vs raw {}",
            cached.mean_response_ms(),
            no_cache.mean_response_ms()
        );
    }

    #[test]
    fn mirror_duplication_cancels_losers() {
        // Saturate a 2-way mirror with reads; duplicates must never double
        // count completions.
        let spec = IometerSpec::random_read_512(8_000_000);
        let mut sim = ArraySim::new(quick_cfg(Shape::mirror(2)), 8_000_000).unwrap();
        let r = sim.run_closed_loop(&spec, 16, 2_000);
        assert_eq!(r.completed, 2_000);
    }

    #[test]
    fn tracked_knowledge_reports_prediction_stats() {
        let trace = SyntheticSpec::cello_base().generate(7, 1_000);
        let cfg = EngineConfig::new(Shape::sr_array(2, 3).unwrap());
        let mut sim = ArraySim::new(cfg, trace.data_sectors).unwrap();
        let mut r = sim.run_trace(&trace);
        assert!(r.prediction.requests > 1_000 - 10);
        // Table 2 territory: sub-percent misses, tens-of-us errors.
        assert!(
            r.prediction.miss_rate() < 0.05,
            "miss {}",
            r.prediction.miss_rate()
        );
        let d = r.prediction.demerit_us();
        assert!(d < 500.0, "demerit {d}");
    }

    #[test]
    fn drain_background_empties_the_nvram_table() {
        let trace = SyntheticSpec::cello_base().generate(9, 1_500);
        let mut sim = ArraySim::new(
            quick_cfg(Shape::sr_array(2, 3).unwrap()),
            trace.data_sectors,
        )
        .unwrap();
        let _ = sim.run_trace(&trace);
        // Structured replays quiesce before reporting, so the table is
        // already clean; drain must agree and be a no-op.
        let pending = sim.nvram_entries();
        let drained = sim.drain_background();
        assert_eq!(sim.nvram_entries(), 0);
        assert!(drained >= pending as u64);
    }

    #[test]
    fn drain_background_is_a_noop_when_clean() {
        let trace = SyntheticSpec::cello_base().generate(10, 200);
        let mut sim = ArraySim::new(quick_cfg(Shape::striping(2)), trace.data_sectors).unwrap();
        let _ = sim.run_trace(&trace);
        // Striping makes no replicas: nothing to drain.
        assert_eq!(sim.nvram_entries(), 0);
        assert_eq!(sim.drain_background(), 0);
    }

    #[test]
    fn read_ahead_accelerates_sequential_streams() {
        let spec = IometerSpec::sequential_read(8_000_000, 128);
        let run = |read_ahead: bool| {
            let mut cfg = quick_cfg(Shape::striping(2));
            cfg.read_ahead = read_ahead;
            let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
            sim.run_closed_loop(&spec, 2, 2_000).throughput_iops()
        };
        let cold = run(false);
        let buffered = run(true);
        assert!(
            buffered > cold * 1.2,
            "read-ahead {buffered} vs cold {cold}"
        );
    }

    #[test]
    fn nvram_threshold_forces_delayed_writes_out() {
        // A tiny NVRAM table must bound the delayed-write backlog even
        // under continuous foreground pressure.
        let spec = IometerSpec::microbench(8_000_000, 0.3); // Write-heavy.
        let mut cfg = quick_cfg(Shape::sr_array(2, 3).unwrap());
        cfg.nvram_threshold = 20;
        let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
        let r = sim.run_closed_loop(&spec, 16, 3_000);
        assert!(
            r.nvram_peak <= 20 + 32,
            "NVRAM peaked at {} despite a 20-entry threshold",
            r.nvram_peak
        );
        assert!(r.delayed_propagated > 0);
    }

    #[test]
    fn static_mirror_policy_completes_and_underperforms() {
        let spec = IometerSpec::microbench(8_000_000, 1.0);
        let run = |policy: MirrorPolicy| {
            let mut cfg = quick_cfg(Shape::mirror(3));
            cfg.mirror_policy = policy;
            let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
            sim.run_closed_loop(&spec, 6, 3_000)
        };
        let heuristic = run(MirrorPolicy::IdleOrDuplicate);
        let fixed = run(MirrorPolicy::Static);
        assert_eq!(heuristic.completed, 3_000);
        assert_eq!(fixed.completed, 3_000);
        assert!(heuristic.throughput_iops() > fixed.throughput_iops());
    }

    #[test]
    fn spanning_requests_wait_for_every_fragment() {
        // A request spanning many stripe units completes exactly once and
        // responds no faster than a single-unit request.
        let trace = {
            use mimd_workload::Request;
            let reqs = vec![
                Request {
                    id: 0,
                    arrival: SimTime::ZERO,
                    op: Op::Read,
                    lbn: 100,
                    sectors: 1_000, // Spans 9 units across 4 disks.
                },
                Request {
                    id: 0,
                    arrival: SimTime::ZERO,
                    op: Op::Read,
                    lbn: 5_000_000,
                    sectors: 8,
                },
            ];
            mimd_workload::Trace::new("span", 8_000_000, reqs)
        };
        let mut sim = ArraySim::new(quick_cfg(Shape::striping(4)), 8_000_000).unwrap();
        let r = sim.run_trace(&trace);
        assert_eq!(r.completed, 2);
        // Both requests recorded; the big one is the slower of the two.
        assert!(r.response_ms.max() >= r.response_ms.min());
        assert!(r.phys_requests > 9);
    }

    #[test]
    fn synchronized_striped_mirror_cuts_read_rotation() {
        // §2.5: staggered copies on synchronized spindles halve the
        // rotational wait of a 2-way mirror read.
        let spec = IometerSpec::random_read_512(8_000_000);
        let run = |stagger: bool| {
            let mut cfg = quick_cfg(Shape::raid10(4).unwrap());
            cfg.mirror_stagger = stagger;
            cfg.sync_spindles = true;
            let mut sim = ArraySim::new(cfg, 8_000_000).unwrap();
            sim.run_closed_loop(&spec, 1, 3_000).rotation_ms.mean()
        };
        let plain = run(false);
        let staggered = run(true);
        // R/2 = 3 ms down toward R/4 = 1.5 ms. The plain mean sits a
        // little under R/2 because idle-owner dispatch picks the shorter
        // total positioning of the two copies; the tolerance absorbs that
        // bias across workload-stream seeds.
        assert!((plain - 3.0).abs() < 0.45, "plain rot {plain}");
        assert!(staggered < 2.0, "staggered rot {staggered}");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let trace = SyntheticSpec::tpcc().generate(8, 800);
        let run = || {
            let mut sim = ArraySim::new(
                EngineConfig::new(Shape::sr_array(2, 3).unwrap()),
                trace.data_sectors,
            )
            .unwrap();
            sim.run_trace(&trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.phys_requests, b.phys_requests);
        assert!((a.mean_response_ms() - b.mean_response_ms()).abs() < 1e-12);
    }

    #[test]
    fn structured_replay_is_identical_at_any_worker_count() {
        let trace = SyntheticSpec::cello_base().generate(11, 600);
        let run = |workers: usize| {
            let mut sim = ArraySim::new(
                EngineConfig::new(Shape::sr_array(2, 3).unwrap()),
                trace.data_sectors,
            )
            .unwrap();
            sim.set_parallelism(workers);
            sim.run_trace(&trace)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.witness, parallel.witness);
        assert_eq!(serial.completed, parallel.completed);
        assert_eq!(serial.phys_requests, parallel.phys_requests);
        assert!((serial.mean_response_ms() - parallel.mean_response_ms()).abs() == 0.0);
    }
}
