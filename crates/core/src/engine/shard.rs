//! Shard-local simulation engines: one [`Shard`] per mirror group.
//!
//! The sharded engine splits [`super::ArraySim`]'s formerly-global state
//! along the array's natural determinism boundary: the **mirror group**.
//! Group `g` of a `Ds × Dr × Dm` array owns exactly the `Dm` disks
//! `[g·Dm, (g+1)·Dm)`, and every physical operation a fragment can ever
//! cause — replica dispatch, mirror duplication, retry, redirect, delayed

//! propagation, hot-spare rebuild traffic — stays on those disks (see
//! [`crate::layout::Layout::group_of`]). A shard therefore carries its own
//! disks, drive queues, calendar wheel, fault context, and named RNG
//! streams, and never touches another shard's state.
//!
//! Cross-shard traffic is carried as timestamped messages:
//!
//! - **inbound**, a time-sorted [`Submission`] list (one entry per
//!   fragment routed to this group) delivered by the conductor;
//! - **outbound**, [`Note`]s — fragment-completion `Part`s and array
//!   `Health` transitions — which the conductor merges in canonical
//!   `(time, shard, emission-index)` order.
//!
//! Each shard folds its own event pops into a private [`DetWitness`]
//! sub-stream with its own queue's FIFO sequence numbers; the conductor
//! combines the sub-streams in shard order (`DetWitness::absorb`), so the
//! final digest certifies the *per-shard pop sequences plus the canonical
//! merge* — a value that cannot depend on how many OS threads executed
//! the shards.

mod parity;

use std::collections::BTreeMap;

use mimd_disk::{SimDisk, Target};

use mimd_sim::{DetWitness, EventQueue, SimDuration, SimRng, SimTime};
use parity::ParityOp;

use crate::dqueue::{DriveQueue, TaskId};
use crate::faults::{FaultCtx, RebuildState};
use crate::layout::{Fragment, Layout, Replica};
use crate::sched::{LookState, Policy, Schedulable};

use super::report::RunReport;
use super::{compact_live_groups, MirrorPolicy, SCHED_WINDOW, TASK_POOL_CAP};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskKind {
    Read,
    /// Foreground write of all rotational replicas on this disk.
    WriteAll,
    /// Background-mode first copy; completion spawns delayed propagation.
    WriteFirst,
    /// One delayed replica propagation.
    Delayed,
    /// A hot-spare rebuild chunk read on a surviving mirror. Rides the
    /// delayed queue so foreground work wins the disk, and stays out of
    /// the foreground latency accounting.
    Rebuild,
    /// One read leg of a parity operation (RAID 4/5): a plain data read,
    /// a degraded-read reconstruction leg, or the old-value read of an
    /// RMW. `task.job` holds the owning [`ParityOp`] id.
    ParityRead,
    /// One write leg of a parity operation: RMW data/parity update or a
    /// full-stripe member write. `task.job` holds the [`ParityOp`] id.
    ParityWrite,
}

#[derive(Debug, Clone)]
pub(crate) struct PendingTask {
    /// Shard-local job id (an index into the shard's [`JobRing`]), or
    /// `u64::MAX` for tasks with no logical request (delayed propagation,
    /// rebuild chunk reads).
    pub(crate) job: u64,
    pub(crate) frag: Fragment,
    pub(crate) write: bool,
    pub(crate) kind: TaskKind,
    pub(crate) targets: Vec<Target>,
    /// `(replica, mirror)` per target.
    pub(crate) meta: Vec<(u8, u8)>,
    pub(crate) enqueued: SimTime,
    pub(crate) dup: Option<u64>,
    /// Coalescing key for delayed entries.
    pub(crate) key: (u64, u8, u8),
    /// Retry attempts consumed so far (fault layer).
    pub(crate) attempt: u8,
    /// Timeout-tracking stamp; `0` means no timeout is armed on this task.
    pub(crate) track: u64,
}

impl PendingTask {
    /// An empty shell for the recycling pool.
    fn shell() -> PendingTask {
        PendingTask {
            job: 0,
            frag: Fragment { lbn: 0, sectors: 0 },
            write: false,
            kind: TaskKind::Read,
            targets: Vec::new(),
            meta: Vec::new(),
            enqueued: SimTime::ZERO,
            dup: None,
            key: (0, 0, 0),
            attempt: 0,
            track: 0,
        }
    }
}

impl Schedulable for PendingTask {
    fn candidates(&self) -> &[Target] {
        &self.targets
    }
    fn is_write(&self) -> bool {
        self.write
    }
    fn enqueued(&self) -> SimTime {
        self.enqueued
    }
}

/// Started mirror-duplicate generations, as a growable bitset.
#[derive(Debug, Default)]
struct DupSet {
    words: Vec<u64>,
}

impl DupSet {
    fn insert(&mut self, g: u64) {
        let (w, b) = ((g / 64) as usize, g % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    fn contains(&self, g: u64) -> bool {
        let (w, b) = ((g / 64) as usize, g % 64);
        self.words.get(w).is_some_and(|&word| word >> b & 1 != 0)
    }
}

#[derive(Debug)]
struct InFlight {
    task: PendingTask,
    chosen: usize,
}

/// Shard-local events. The variants and witness kind codes mirror the
/// pre-shard engine's event enum exactly (kinds 1, 3–8); the conductor
/// folds the two array-wide kinds (0 = arrival, 2 = cache/empty
/// completion) into its own sub-stream. Disk indices are **global** so
/// witness records stay comparable across array shapes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColEvent {
    /// A disk finished its in-flight physical operation.
    DiskDone(usize),
    /// A disk fails (fault injection).
    DiskFail(usize),
    /// A fail-slow window opens on a disk.
    SlowStart(usize),
    /// A fail-slow window closes on a disk.
    SlowEnd(usize),
    /// A read's simulated-time timeout fires.
    Timeout { disk: usize, id: TaskId, track: u64 },
    /// The hot spare for a failed disk comes online and copying begins.
    RebuildStart(usize),
    /// The spare finished writing one rebuild chunk (all `Dr` replicas).
    SpareDone(usize),
}

impl ColEvent {
    /// The `(disk, kind)` pair folded into the determinism witness for
    /// every pop. Kind codes are part of the witness definition: renumber
    /// them and historical witness values stop being comparable.
    pub(crate) fn witness_code(&self) -> (u32, u8) {
        match *self {
            ColEvent::DiskDone(d) => (d as u32, 1),
            ColEvent::DiskFail(d) => (d as u32, 3),
            ColEvent::SlowStart(d) => (d as u32, 4),
            ColEvent::SlowEnd(d) => (d as u32, 5),
            ColEvent::Timeout { disk, .. } => (disk as u32, 6),
            ColEvent::RebuildStart(d) => (d as u32, 7),
            ColEvent::SpareDone(d) => (d as u32, 8),
        }
    }
}

/// An array-health transition a shard reports to the conductor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HealthKind {
    /// A disk died (on) or was restored by a completed rebuild (off).
    Dead,
    /// A fail-slow window opened (on) or closed (off).
    Slow,
    /// A hot-spare copy started (on) or ended/was abandoned (off).
    Rebuilding,
}

/// Outbound shard→conductor message.
///
/// Shards append notes in their own event order; the conductor applies
/// them immediately (interleaved mode) or merges them across shards in
/// `(time, shard, emission-index)` order (structured mode).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Note {
    /// One routed fragment of a logical request finished (all its local
    /// parts completed, or it was failed outright).
    Part {
        logical: u64,
        at: SimTime,
        failed: bool,
    },
    /// An array-health transition, for degraded-window classification.
    Health {
        at: SimTime,
        kind: HealthKind,
        on: bool,
    },
}

/// One fragment of a logical request, routed to the shard that owns its
/// mirror group, with the arrival-time stamp it must be submitted at.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Submission {
    pub(crate) at: SimTime,
    pub(crate) logical: u64,
    pub(crate) frag: Fragment,
    pub(crate) write: bool,
    /// Foreground write mode: every replica group gets its own gating task.
    pub(crate) fg_write: bool,
    /// Parity organizations only: this fragment covers a group's full
    /// stripe row of new data, so parity is computed without old-value
    /// reads. Always `false` without a parity layout.
    pub(crate) stripe: bool,
}

/// The NVRAM delayed-write table budget a shard runs against.
///
/// In interleaved (serial) execution the conductor passes one shared
/// counter with the configured threshold — the pre-shard semantics. In
/// structured (parallelizable) execution each shard gets a private
/// counter with `ceil(threshold / nshards)`, so the force-flush decision
/// never reads another shard's state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Nvram {
    pub(crate) count: usize,
    pub(crate) threshold: usize,
    pub(crate) peak: usize,
}

impl Nvram {
    pub(crate) fn new(threshold: usize) -> Self {
        Nvram {
            count: 0,
            threshold,
            peak: 0,
        }
    }
}

/// Live fragment jobs of one shard, addressed by sequential local id.
/// Same ring-buffer idea as the conductor's `LogicalTable`, but only the
/// part countdown lives here — request metadata stays with the conductor.
#[derive(Debug, Default)]
struct JobRing {
    base: u64,
    logicals: std::collections::VecDeque<u64>,
    parts: std::collections::VecDeque<u32>,
    /// Bit 0: failed. Bit 1: live.
    flags: std::collections::VecDeque<u8>,
    live: usize,
}

const JOB_FAILED: u8 = 1;
const JOB_LIVE: u8 = 2;

impl JobRing {
    fn insert(&mut self, id: u64, logical: u64, parts: u32) {
        debug_assert_eq!(id, self.base + self.logicals.len() as u64);
        self.logicals.push_back(logical);
        self.parts.push_back(parts);
        self.flags.push_back(JOB_LIVE);
        self.live += 1;
    }

    fn index(&self, id: u64) -> Option<usize> {
        let idx = id.checked_sub(self.base)? as usize;
        (idx < self.flags.len() && self.flags[idx] & JOB_LIVE != 0).then_some(idx)
    }

    /// Counts one part done; on the job's last part, retires it and
    /// returns `(logical, failed)` for the completion note.
    fn dec(&mut self, id: u64, failed: bool) -> Option<(u64, bool)> {
        let idx = self.index(id)?;
        if failed {
            self.flags[idx] |= JOB_FAILED;
        }
        let p = self.parts[idx].saturating_sub(1);
        self.parts[idx] = p;
        if p != 0 {
            return None;
        }
        let out = (self.logicals[idx], self.flags[idx] & JOB_FAILED != 0);
        self.flags[idx] = 0;
        self.live -= 1;
        while self.flags.front() == Some(&0) {
            self.logicals.pop_front();
            self.parts.pop_front();
            self.flags.pop_front();
            self.base += 1;
        }
        Some(out)
    }
}

/// A captured pop record for the shard-equivalence property tests:
/// `(time_ns, seq, disk, kind)` exactly as folded into the witness.
pub(crate) type PopRecord = (u64, u64, u32, u8);

/// One shard: a mirror group's disks and everything that schedules them.
#[derive(Debug)]
pub(crate) struct Shard {
    /// First global disk index owned by this shard; the shard owns
    /// `[base, base + width)` and local vectors are indexed by
    /// `disk - base`.
    pub(crate) base: usize,
    /// Disks this shard owns: `Dm` for mirrored shapes, the parity group
    /// size `G` for RAID 4/5 (the two organizations never combine).
    width: usize,
    dr: usize,
    stripe_unit: u32,
    /// `Ds × Dr` (static mirror-policy stride).
    ds_x_dr: u64,
    mirror_policy: MirrorPolicy,
    coalesce: bool,
    slack: SimDuration,
    disks: Vec<SimDisk>,
    fg: Vec<DriveQueue<PendingTask>>,
    delayed: Vec<DriveQueue<PendingTask>>,
    /// Mirror-duplicate tags per disk: (duplicate generation, queued id).
    dup_tags: Vec<Vec<(u64, TaskId)>>,
    /// Delayed-write coalesce index per disk: replica key → queued id.
    delayed_keys: Vec<BTreeMap<(u64, u8, u8), TaskId>>,
    look: Vec<LookState>,
    inflight: Vec<Option<InFlight>>,
    /// Global-length so layout-facing code (`compact_live_groups`,
    /// `owner_disks` filters) needs no index translation; only this
    /// shard's slots are ever set.
    pub(crate) dead: Vec<bool>,
    events: EventQueue<ColEvent>,
    jobs: JobRing,
    next_job: u64,
    dup_started: DupSet,
    next_dup: u64,
    /// Live parity operations (RAID 4/5 reads, RMWs, stripe writes),
    /// keyed by operation id; parity task `job` fields hold this id.
    parity_ops: BTreeMap<u64, ParityOp>,
    next_parity_op: u64,
    /// Per-shard fault context (own named RNG stream, own rebuild state);
    /// `None` for an empty plan.
    pub(crate) faults: Option<Box<FaultCtx>>,
    /// Dispatch-side statistics (prediction, service components, fault
    /// counters); merged into the conductor's report at run end.
    pub(crate) report: RunReport,
    /// Outbound mailbox, drained by the conductor.
    pub(crate) notes: Vec<Note>,
    /// This shard's witness sub-stream over its own event pops.
    pub(crate) witness: DetWitness,
    /// Event pops this run (the engine-scaling throughput denominator).
    pub(crate) pops: u64,
    /// Pop capture for the equivalence property tests (off by default).
    pub(crate) capture: bool,
    pub(crate) pop_log: Vec<PopRecord>,
    touched: Vec<usize>,
    task_pool: Vec<PendingTask>,
    write_scratch: Vec<Target>,
    group_scratch: Vec<Replica>,
    /// Reused lanes for the idle-owner batched positioning probe.
    probe: ProbeScratch,
}

/// Input/output lanes for costing one mirror group's replicas against one
/// disk with [`SimDisk::sched_cost_batch`] (the mirrored/spared pick site
/// of `dispatch_groups`).
#[derive(Debug, Default)]
struct ProbeScratch {
    dist: Vec<u32>,
    surface: Vec<u32>,
    write: Vec<u8>,
    phase: Vec<f64>,
    pos: Vec<u64>,
    rot: Vec<u64>,
}

impl ProbeScratch {
    /// Minimum positioning cost over `g`'s replica targets on `disk`, via
    /// one batched kernel call. Per replica this equals
    /// `disk.estimate(now, &r.target, write).positioning().as_nanos()`
    /// exactly, provided the drive has no read-ahead buffer (the caller
    /// checks).
    fn min_positioning_ns(
        &mut self,
        disk: &SimDisk,
        now: SimTime,
        write: bool,
        g: &[Replica],
    ) -> u64 {
        let n = g.len();
        let arm = disk.arm_cylinder();
        self.dist.clear();
        self.surface.clear();
        self.phase.clear();
        for r in g {
            self.dist.push(arm.abs_diff(r.target.cylinder));
            self.surface.push(r.target.surface);
            self.phase.push(disk.sched_phase(&r.target));
        }
        self.write.clear();
        self.write.resize(n, u8::from(write));
        self.pos.clear();
        self.pos.resize(n, 0);
        self.rot.clear();
        self.rot.resize(n, 0);
        disk.sched_cost_batch(
            now,
            &self.dist,
            &self.surface,
            &self.write,
            &self.phase,
            &mut self.pos,
            &mut self.rot,
        );
        self.pos.iter().copied().min().unwrap_or(u64::MAX)
    }
}

impl Shard {
    /// Builds the shard for mirror group `group` of an `ndisks`-disk
    /// array. Per-disk RNG streams are `named_indexed` by **global** disk
    /// index, so the disk population is identical at any shard count and
    /// independent of construction order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        group: usize,
        ndisks: usize,
        lay: &Layout,
        cfg: &super::EngineConfig,
        geometry: &mimd_disk::Geometry,
        seek: &mimd_disk::SeekProfile,
        policy: Policy,
        horizon_ns: u64,
    ) -> Shard {
        let shape = lay.shape();
        let width = lay.disks_per_group().max(1);
        let dr = shape.dr.max(1) as usize;
        let base = group * width;
        let mut disks = Vec::with_capacity(width);
        for m in 0..width {
            let d_global = (base + m) as u64;
            let mut d = SimDisk::with_parts(
                &cfg.disk_params,
                geometry.clone(),
                seek.clone(),
                cfg.timing,
                cfg.knowledge,
                SimRng::named_indexed(cfg.seed, "disk", d_global).below(u64::MAX),
            );
            if !cfg.sync_spindles {
                d.set_phase_offset(SimRng::named_indexed(cfg.seed, "spindle", d_global).unit());
            }
            d.set_read_ahead(cfg.read_ahead);
            disks.push(d);
        }
        let faults = if cfg.faults.is_empty() {
            None
        } else {
            let ctx = FaultCtx::new(&cfg.faults, cfg.seed, ndisks, group as u64);
            for w in &ctx.plan.fail_slow {
                if w.disk >= base && w.disk < base + width {
                    disks[w.disk - base].add_fail_slow(w.from, w.until, w.factor);
                }
            }
            Some(Box::new(ctx))
        };
        Shard {
            base,
            width,
            dr,
            stripe_unit: cfg.stripe_unit,
            ds_x_dr: shape.ds as u64 * shape.dr as u64,
            mirror_policy: cfg.mirror_policy,
            coalesce: cfg.coalesce_delayed,
            slack: cfg.slack,
            disks,
            fg: (0..width).map(|_| DriveQueue::new(policy)).collect(),
            delayed: (0..width).map(|_| DriveQueue::new(policy)).collect(),
            dup_tags: vec![Vec::new(); width],
            delayed_keys: vec![BTreeMap::new(); width],
            look: vec![LookState::default(); width],
            inflight: (0..width).map(|_| None).collect(),
            dead: vec![false; ndisks],
            events: EventQueue::with_horizon_ns(horizon_ns),
            jobs: JobRing::default(),
            next_job: 0,
            dup_started: DupSet::default(),
            next_dup: 0,
            parity_ops: BTreeMap::new(),
            next_parity_op: 0,
            faults,
            report: RunReport::default(),
            notes: Vec::new(),
            witness: DetWitness::new(),
            pops: 0,
            capture: false,
            pop_log: Vec::new(),
            touched: Vec::new(),
            task_pool: Vec::new(),
            write_scratch: Vec::new(),
            group_scratch: Vec::new(),
            probe: ProbeScratch::default(),
        }
    }

    /// Schedules a disk-failure event (fault injection / public API).
    pub(crate) fn schedule_failure(&mut self, at: SimTime, disk: usize) {
        self.events.push(at, ColEvent::DiskFail(disk));
    }

    /// Arms the fault plan's events for this shard's disks (idempotent).
    pub(crate) fn arm(&mut self) {
        let (base, width) = (self.base, self.width);
        let Some(ctx) = self.faults.as_mut() else {
            return;
        };
        if ctx.armed {
            return;
        }
        ctx.armed = true;
        for f in &ctx.plan.fail_stop {
            if f.disk >= base && f.disk < base + width {
                self.events.push(f.at, ColEvent::DiskFail(f.disk));
            }
        }
        for w in &ctx.plan.fail_slow {
            if w.disk >= base && w.disk < base + width {
                self.events.push(w.from, ColEvent::SlowStart(w.disk));
                self.events.push(w.until, ColEvent::SlowEnd(w.disk));
            }
        }
    }

    /// The firing time of this shard's earliest pending event.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Pops and handles exactly one event. Returns `false` when idle.
    pub(crate) fn step(&mut self, lay: &Layout, nv: &mut Nvram) -> bool {
        let Some((now, seq, ev)) = self.events.pop_entry() else {
            return false;
        };
        let (wd, wk) = ev.witness_code();
        self.witness.fold(now.as_nanos(), seq, wd, wk);
        self.pops += 1;
        if self.capture {
            self.pop_log.push((now.as_nanos(), seq, wd, wk));
        }
        match ev {
            ColEvent::DiskDone(d) => self.on_disk_done(lay, now, d, nv),
            ColEvent::DiskFail(d) => self.on_disk_fail(lay, now, d, nv),
            ColEvent::SlowStart(d) => self.on_slow_edge(now, d, true),
            ColEvent::SlowEnd(d) => self.on_slow_edge(now, d, false),
            ColEvent::Timeout { disk, id, track } => self.on_timeout(lay, now, disk, id, track, nv),
            ColEvent::RebuildStart(d) => self.on_rebuild_start(lay, now, d, nv),
            ColEvent::SpareDone(d) => self.on_spare_done(lay, now, d, nv),
        }
        true
    }

    /// Runs this shard to quiescence against a time-sorted submission
    /// list (structured mode). Submissions are injected ahead of local
    /// events at equal instants — the fixed merge rule that makes the
    /// interleaving independent of how shards are packed onto threads.
    pub(crate) fn run(&mut self, lay: &Layout, subs: &[Submission], nv: &mut Nvram) {
        let mut i = 0;
        loop {
            let next_sub = subs.get(i).map(|s| s.at);
            let take_sub = match (next_sub, self.events.peek_time()) {
                (Some(st), Some(et)) => st <= et,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_sub {
                // Batch the fragments of one logical request arriving at
                // one instant, then kick, as the pre-shard submit path
                // dispatched per request.
                let st = subs[i].at;
                let logical = subs[i].logical;
                while i < subs.len() && subs[i].at == st && subs[i].logical == logical {
                    let s = subs[i];
                    self.submit_frag(lay, s.at, s.logical, s.frag, s.write, s.fg_write, s.stripe);
                    i += 1;
                }
                self.kick(st, nv);
            } else {
                self.step(lay, nv);
            }
        }
    }

    /// Drains every pending event (delayed propagation, in-flight rebuild
    /// chunks) to quiescence — the shard half of `drain_background`.
    pub(crate) fn drain(&mut self, lay: &Layout, at: SimTime, nv: &mut Nvram) {
        for l in 0..self.width {
            self.try_dispatch(at, l, nv);
        }
        while self.step(lay, nv) {}
    }

    /// Plans one routed fragment into local tasks: one gating job with
    /// one part per replica-group task (foreground writes) or one part
    /// total (reads / background-mode first copies). A fragment with no
    /// surviving copy emits an immediate failed `Part` note.
    #[allow(clippy::too_many_arguments)] // one flag per routed-submission attribute
    pub(crate) fn submit_frag(
        &mut self,
        lay: &Layout,
        now: SimTime,
        logical: u64,
        frag: Fragment,
        write: bool,
        fg_write: bool,
        stripe: bool,
    ) {
        if lay.parity().is_some() {
            self.submit_parity_frag(lay, now, logical, frag, write, stripe);
            return;
        }
        let mut reps = std::mem::take(&mut self.group_scratch);
        reps.clear();
        lay.write_groups_into(frag, &mut reps);
        compact_live_groups(&mut reps, 0, self.dr, &self.dead);
        if reps.is_empty() {
            self.notes.push(Note::Part {
                logical,
                at: now,
                failed: true,
            });
        } else {
            let job = self.next_job;
            self.next_job += 1;
            let fg = write && fg_write;
            let parts = if fg { (reps.len() / self.dr) as u32 } else { 1 };
            self.jobs.insert(job, logical, parts);
            if fg {
                for replicas in reps.chunks_exact(self.dr) {
                    let disk = replicas[0].disk;
                    let task = self.make_task(job, frag, true, TaskKind::WriteAll, replicas, now);
                    self.enqueue(disk, task);
                    self.touched.push(disk - self.base);
                }
            } else {
                let kind = if write {
                    TaskKind::WriteFirst
                } else {
                    TaskKind::Read
                };
                self.dispatch_mirrored(job, frag, write, kind, &reps, now);
            }
        }
        reps.clear();
        self.group_scratch = reps;
    }

    /// Dispatches the disks touched since the last kick.
    pub(crate) fn kick(&mut self, now: SimTime, nv: &mut Nvram) {
        if self.touched.is_empty() {
            return;
        }
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        touched.dedup();
        for &l in &touched {
            self.try_dispatch(now, l, nv);
        }
        touched.clear();
        self.touched = touched;
    }

    /// Builds a task over `replicas`, reusing a pooled shell.
    fn make_task(
        &mut self,
        job: u64,
        frag: Fragment,
        write: bool,
        kind: TaskKind,
        replicas: &[Replica],
        now: SimTime,
    ) -> PendingTask {
        let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
        t.job = job;
        t.frag = frag;
        t.write = write;
        t.kind = kind;
        t.targets.clear();
        t.targets.extend(replicas.iter().map(|r| r.target));
        t.meta.clear();
        t.meta
            .extend(replicas.iter().map(|r| (r.replica, r.mirror)));
        t.enqueued = now;
        t.dup = None;
        t.key = (frag.lbn, 0, 0);
        t.attempt = 0;
        t.track = 0;
        t
    }

    /// Returns a completed task's shell (with its buffers) to the pool.
    fn recycle(&mut self, task: PendingTask) {
        if self.task_pool.len() < TASK_POOL_CAP {
            self.task_pool.push(task);
        }
    }

    /// Marks one part of a job done; the job's last part emits its
    /// completion note to the conductor.
    fn finish_part(&mut self, now: SimTime, job: u64, failed: bool) {
        if let Some((logical, any_failed)) = self.jobs.dec(job, failed) {
            self.notes.push(Note::Part {
                logical,
                at: now,
                failed: any_failed,
            });
        }
    }

    /// Dispatches a read (or first-copy write), steering it away from
    /// disks inside a fail-slow window first when the plan asks for
    /// redirection and a healthy copy exists.
    fn dispatch_mirrored(
        &mut self,
        job: u64,
        frag: Fragment,
        write: bool,
        kind: TaskKind,
        groups: &[Replica],
        now: SimTime,
    ) {
        let dr = self.dr;
        let mut filtered: Option<Vec<Replica>> = None;
        if !write && groups.len() > dr {
            if let Some(ctx) = self.faults.as_mut() {
                if ctx.plan.redirect && ctx.any_slow() {
                    let mut buf = std::mem::take(&mut ctx.redirect_scratch);
                    buf.clear();
                    for g in groups.chunks_exact(dr) {
                        if ctx.slow_now.get(g[0].disk).copied().unwrap_or(0) == 0 {
                            buf.extend_from_slice(g);
                        }
                    }
                    if !buf.is_empty() && buf.len() < groups.len() {
                        ctx.report.redirects += 1;
                        filtered = Some(buf);
                    } else {
                        buf.clear();
                        ctx.redirect_scratch = buf;
                    }
                }
            }
        }
        if let Some(mut buf) = filtered {
            self.dispatch_groups(job, frag, write, kind, &buf, now);
            buf.clear();
            if let Some(ctx) = self.faults.as_mut() {
                ctx.redirect_scratch = buf;
            }
        } else {
            self.dispatch_groups(job, frag, write, kind, groups, now);
        }
    }

    /// Dispatches a read (or first-copy write) per the §3.3 mirror
    /// heuristic, recording touched local disks for the next kick.
    fn dispatch_groups(
        &mut self,
        job: u64,
        frag: Fragment,
        write: bool,
        kind: TaskKind,
        groups: &[Replica],
        now: SimTime,
    ) {
        let dr = self.dr;
        let ngroups = groups.len() / dr;
        if ngroups == 1 || self.mirror_policy == MirrorPolicy::Static {
            let idx = if ngroups == 1 {
                0
            } else {
                ((frag.lbn / self.stripe_unit as u64) / self.ds_x_dr % ngroups as u64) as usize
            };
            let replicas = &groups[idx * dr..(idx + 1) * dr];
            let disk = replicas[0].disk;
            let task = self.make_task(job, frag, write, kind, replicas, now);
            self.enqueue(disk, task);
            self.touched.push(disk - self.base);
            return;
        }

        // Idle owners first: send to the idle head closest to a copy. One
        // batched kernel call costs a whole group's replicas; strict `<`
        // keeps the scalar `min_by_key`'s first-minimal tie rule.
        let base = self.base;
        let mut idle: Option<(&[Replica], u64)> = None;
        for g in groups.chunks_exact(dr) {
            let l = g[0].disk - base;
            if self.inflight[l].is_some() || !self.fg[l].is_empty() {
                continue;
            }
            let disk = &self.disks[l];
            let key = if disk.read_ahead_enabled() {
                // A buffered hit short-circuits positioning; stay scalar.
                g.iter()
                    .map(|r| {
                        disk.estimate(now, &r.target, write)
                            .positioning()
                            .as_nanos()
                    })
                    .min()
                    .unwrap_or(u64::MAX)
            } else {
                self.probe.min_positioning_ns(disk, now, write, g)
            };
            if idle.is_none_or(|(_, k)| key < k) {
                idle = Some((g, key));
            }
        }
        if let Some((replicas, _)) = idle {
            let disk = replicas[0].disk;
            let task = self.make_task(job, frag, write, kind, replicas, now);
            self.enqueue(disk, task);
            self.touched.push(disk - base);
            return;
        }

        // All owners busy: duplicate into every drive queue; the first
        // disk to start it wins and the rest are cancelled.
        let dup = self.next_dup;
        self.next_dup += 1;
        for replicas in groups.chunks_exact(dr) {
            let disk = replicas[0].disk;
            let mut t = self.make_task(job, frag, write, kind, replicas, now);
            t.dup = Some(dup);
            self.enqueue(disk, t);
            self.touched.push(disk - base);
        }
    }

    fn enqueue(&mut self, disk: usize, mut task: PendingTask) {
        let l = disk - self.base;
        // Arm a simulated-time timeout on single-queued reads; the
        // deadline backs off exponentially with the attempt count.
        let mut arm = None;
        if let Some(ctx) = self.faults.as_mut() {
            if ctx.plan.retry.enabled() && task.kind == TaskKind::Read && task.dup.is_none() {
                ctx.next_track += 1;
                task.track = ctx.next_track;
                arm = Some((
                    task.enqueued + ctx.plan.retry.timeout_for(task.attempt),
                    task.track,
                ));
            }
        }
        let dup = task.dup;
        let id = self.fg[l].insert(&self.disks[l], task);
        if let Some(g) = dup {
            self.dup_tags[l].push((g, id));
        }
        if let Some((at, track)) = arm {
            self.events.push(at, ColEvent::Timeout { disk, id, track });
        }
    }

    fn push_delayed(
        &mut self,
        disk: usize,
        replica: &Replica,
        frag: Fragment,
        now: SimTime,
        nv: &mut Nvram,
    ) {
        if self.dead[disk] {
            return;
        }
        let l = disk - self.base;
        let key = (frag.lbn, replica.replica, replica.mirror);
        if self.coalesce {
            if let Some(&id) = self.delayed_keys[l].get(&key) {
                // A newer write to the same block supersedes the pending
                // propagation (§3.4 "data that die young").
                let target = replica.target;
                let meta = (replica.replica, replica.mirror);
                let live = self.delayed[l].replace_with(&self.disks[l], id, |t| {
                    t.targets.clear();
                    t.targets.push(target);
                    t.meta.clear();
                    t.meta.push(meta);
                    t.enqueued = now;
                });
                if live {
                    self.report.delayed_coalesced += 1;
                    return;
                }
            }
        }
        let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
        t.job = u64::MAX;
        t.frag = frag;
        t.write = true;
        t.kind = TaskKind::Delayed;
        t.targets.clear();
        t.targets.push(replica.target);
        t.meta.clear();
        t.meta.push((replica.replica, replica.mirror));
        t.enqueued = now;
        t.dup = None;
        t.key = key;
        t.attempt = 0;
        t.track = 0;
        let id = self.delayed[l].insert(&self.disks[l], t);
        if self.coalesce {
            self.delayed_keys[l].insert(key, id);
        }
        nv.count += 1;
        nv.peak = nv.peak.max(nv.count);
    }

    fn try_dispatch(&mut self, now: SimTime, l: usize, nv: &mut Nvram) {
        if self.inflight[l].is_some() {
            return;
        }
        // Purge mirror duplicates another disk already started.
        if !self.dup_tags[l].is_empty() {
            let started = &self.dup_started;
            let queue = &mut self.fg[l];
            let pool = &mut self.task_pool;
            self.dup_tags[l].retain(|&(g, id)| {
                if started.contains(g) {
                    if let Some(t) = queue.remove(id) {
                        if pool.len() < TASK_POOL_CAP {
                            pool.push(t);
                        }
                    }
                    return false;
                }
                queue.get(id).is_some()
            });
        }

        // Delayed writes run when the foreground queue is empty, or are
        // forced out when the NVRAM budget crosses its threshold (§3.4).
        let force_delayed = nv.count >= nv.threshold;
        let use_delayed = (self.fg[l].is_empty() || force_delayed) && !self.delayed[l].is_empty();
        let queue = if use_delayed {
            &mut self.delayed[l]
        } else {
            &mut self.fg[l]
        };
        let Some((id, candidate)) = queue.pick(
            &self.disks[l],
            now,
            &mut self.look[l],
            self.slack,
            SCHED_WINDOW,
        ) else {
            return;
        };
        let task = if use_delayed {
            self.delayed[l].remove(id)
        } else {
            self.fg[l].remove(id)
        };
        let Some(task) = task else {
            return; // Unreachable: the pick came from this queue.
        };
        if task.kind == TaskKind::Delayed {
            self.delayed_keys[l].remove(&task.key);
        }
        if let Some(g) = task.dup {
            self.dup_started.insert(g);
        }

        // Service the chosen target (plus follow-on replicas for a
        // foreground multi-replica write).
        let chosen = &task.targets[candidate];
        let (predicted, first) = self.disks[l].begin_with_estimate(now, chosen, task.write);
        let predicted = predicted.total();
        let mut end = now + first.total();

        // Table-2 accounting: predicted vs realised access time.
        let pr = &mut self.report.prediction;
        pr.requests += 1;
        if first.missed_rotation {
            pr.misses += 1;
        }
        let actual_us = first.total().as_micros_f64();
        if !first.missed_rotation {
            pr.error.push(actual_us - predicted.as_micros_f64());
        }
        pr.predicted_us.push(predicted.as_micros_f64());
        pr.actual_us.push(actual_us);
        if !matches!(task.kind, TaskKind::Delayed | TaskKind::Rebuild) {
            self.report.seek_ms.push(first.seek.as_millis_f64());
            self.report.rotation_ms.push(first.rotation.as_millis_f64());
            self.report.transfer_ms.push(first.transfer.as_millis_f64());
            self.report
                .queue_wait_ms
                .push(now.saturating_since(task.enqueued).as_millis_f64());
        }

        if task.kind == TaskKind::WriteAll && task.targets.len() > 1 {
            // Walk the remaining rotational replicas greedily (§3.4).
            let mut rest = std::mem::take(&mut self.write_scratch);
            rest.clear();
            rest.extend(
                task.targets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != candidate)
                    .map(|(_, t)| *t),
            );
            while let Some((i, _)) = rest.iter().enumerate().min_by_key(|(_, t)| {
                self.disks[l]
                    .estimate_chained(end, t, true)
                    .total()
                    .as_nanos()
            }) {
                let b = self.disks[l].begin_chained(end, &rest[i], true);
                end += b.total();
                rest.swap_remove(i);
            }
            self.write_scratch = rest;
        }

        self.report.phys_requests += 1;
        self.inflight[l] = Some(InFlight {
            task,
            chosen: candidate,
        });
        self.events.push(end, ColEvent::DiskDone(self.base + l));
    }

    fn on_disk_done(&mut self, lay: &Layout, now: SimTime, disk: usize, nv: &mut Nvram) {
        let l = disk - self.base;
        let Some(fly) = self.inflight[l].take() else {
            return;
        };
        if fly.task.kind == TaskKind::Rebuild {
            if lay.parity().is_some() {
                self.on_parity_rebuild_read_done(lay, now, disk, fly.task, nv);
            } else {
                self.on_rebuild_read_done(lay, now, disk, fly.task, nv);
            }
            return;
        }
        // Transient media errors surface at completion time, drawn from
        // this shard's fault stream (foreground operations only).
        if let Some(ctx) = self.faults.as_mut() {
            if ctx.plan.media.enabled() && fly.task.kind != TaskKind::Delayed {
                let rate = if matches!(fly.task.kind, TaskKind::Read | TaskKind::ParityRead) {
                    ctx.plan.media.read_rate
                } else {
                    ctx.plan.media.write_rate
                };
                if rate > 0.0 && ctx.rng.chance(rate) {
                    ctx.report.media_errors += 1;
                    self.on_media_error(lay, now, disk, fly.task, nv);
                    return;
                }
            }
        }
        if matches!(fly.task.kind, TaskKind::ParityRead | TaskKind::ParityWrite) {
            self.on_parity_done(now, disk, fly.task, nv);
            return;
        }
        match fly.task.kind {
            TaskKind::Rebuild | TaskKind::ParityRead | TaskKind::ParityWrite => {}
            TaskKind::Delayed => {
                nv.count = nv.count.saturating_sub(1);
                self.report.delayed_propagated += 1;
            }
            TaskKind::Read | TaskKind::WriteAll | TaskKind::WriteFirst => {
                if fly.task.kind == TaskKind::WriteFirst {
                    // The first copy is durable; queue the remaining
                    // Dr*Dm - 1 copies for background propagation.
                    let written = fly.task.meta[fly.chosen];
                    let mut reps = std::mem::take(&mut self.group_scratch);
                    reps.clear();
                    lay.write_groups_into(fly.task.frag, &mut reps);
                    for r in &reps {
                        if (r.replica, r.mirror) == written {
                            continue;
                        }
                        self.push_delayed(r.disk, r, fly.task.frag, now, nv);
                    }
                    reps.clear();
                    self.group_scratch = reps;
                }
                self.finish_part(now, fly.task.job, false);
            }
        }
        self.recycle(fly.task);
        self.try_dispatch(now, l, nv);
    }

    /// A read's simulated-time timeout fired: pull and retry if it still
    /// sits in the foreground queue, else no-op.
    fn on_timeout(
        &mut self,
        lay: &Layout,
        now: SimTime,
        disk: usize,
        id: TaskId,
        track: u64,
        nv: &mut Nvram,
    ) {
        if self.dead[disk] {
            return; // the queue died with the disk; rehoming handled it
        }
        let l = disk - self.base;
        if !self.fg[l]
            .get(id)
            .is_some_and(|t| t.track == track && t.kind == TaskKind::Read)
        {
            return;
        }
        let Some(task) = self.fg[l].remove(id) else {
            return;
        };
        if let Some(ctx) = self.faults.as_mut() {
            ctx.report.timeouts += 1;
        }
        self.retry_or_fail(lay, now, task, Some(disk), nv);
    }

    /// Re-issues a read that timed out or returned a media error, on an
    /// alternate surviving replica group when one exists; a read that
    /// exhausts the attempt budget completes as failed.
    fn retry_or_fail(
        &mut self,
        lay: &Layout,
        now: SimTime,
        mut task: PendingTask,
        exclude: Option<usize>,
        nv: &mut Nvram,
    ) {
        let budget = self
            .faults
            .as_ref()
            .map_or(0, |ctx| ctx.plan.retry.max_retries);
        if task.attempt >= budget {
            if let Some(ctx) = self.faults.as_mut() {
                ctx.report.unrecoverable += 1;
            }
            self.finish_part(now, task.job, true);
            self.recycle(task);
            return;
        }
        task.attempt += 1;
        let mut groups = std::mem::take(&mut self.group_scratch);
        groups.clear();
        lay.write_groups_into(task.frag, &mut groups);
        let dr = self.dr;
        compact_live_groups(&mut groups, 0, dr, &self.dead);
        let ngroups = groups.len() / dr;
        if ngroups == 0 {
            if let Some(ctx) = self.faults.as_mut() {
                ctx.report.unrecoverable += 1;
            }
            self.finish_part(now, task.job, true);
            self.recycle(task);
        } else {
            let mut pick = task.attempt as usize % ngroups;
            if ngroups > 1 && exclude == Some(groups[pick * dr].disk) {
                pick = (pick + 1) % ngroups;
            }
            let replicas = &groups[pick * dr..(pick + 1) * dr];
            let disk = replicas[0].disk;
            task.targets.clear();
            task.targets.extend(replicas.iter().map(|r| r.target));
            task.meta.clear();
            task.meta
                .extend(replicas.iter().map(|r| (r.replica, r.mirror)));
            task.enqueued = now;
            task.dup = None;
            if let Some(ctx) = self.faults.as_mut() {
                ctx.report.retries += 1;
            }
            self.enqueue(disk, task);
            self.try_dispatch(now, disk - self.base, nv);
        }
        groups.clear();
        self.group_scratch = groups;
    }

    /// Handles a transient media error on a completed foreground
    /// operation. Reads retry on an alternate replica; writes retry in
    /// place; an exhausted budget fails the logical request.
    fn on_media_error(
        &mut self,
        lay: &Layout,
        now: SimTime,
        disk: usize,
        mut task: PendingTask,
        nv: &mut Nvram,
    ) {
        match task.kind {
            TaskKind::Read => self.retry_or_fail(lay, now, task, Some(disk), nv),
            TaskKind::WriteAll | TaskKind::WriteFirst => {
                let budget = self
                    .faults
                    .as_ref()
                    .map_or(0, |ctx| ctx.plan.retry.max_retries);
                if task.attempt >= budget {
                    if let Some(ctx) = self.faults.as_mut() {
                        ctx.report.unrecoverable += 1;
                    }
                    self.finish_part(now, task.job, true);
                    self.recycle(task);
                } else {
                    task.attempt += 1;
                    task.enqueued = now;
                    task.dup = None;
                    if let Some(ctx) = self.faults.as_mut() {
                        ctx.report.retries += 1;
                    }
                    self.enqueue(disk, task);
                }
            }
            TaskKind::ParityRead | TaskKind::ParityWrite => {
                self.on_parity_media_error(now, disk, task)
            }
            TaskKind::Delayed | TaskKind::Rebuild => self.recycle(task),
        }
        self.try_dispatch(now, disk - self.base, nv);
    }

    /// Tracks a fail-slow window edge and reports the health transition.
    fn on_slow_edge(&mut self, now: SimTime, disk: usize, start: bool) {
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(c) = ctx.slow_now.get_mut(disk) {
                if start {
                    *c += 1;
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }
        self.notes.push(Note::Health {
            at: now,
            kind: HealthKind::Slow,
            on: start,
        });
    }

    fn on_disk_fail(&mut self, lay: &Layout, now: SimTime, disk: usize, nv: &mut Nvram) {
        if self.dead[disk] {
            return;
        }
        self.dead[disk] = true;
        self.notes.push(Note::Health {
            at: now,
            kind: HealthKind::Dead,
            on: true,
        });
        let l = disk - self.base;
        // Unpropagated replicas bound for this disk are moot. Only true
        // delayed propagations hold NVRAM entries.
        let dropped = self.delayed[l]
            .ids()
            .iter()
            .filter(|&&id| {
                self.delayed[l]
                    .get(id)
                    .is_some_and(|t| t.kind == TaskKind::Delayed)
            })
            .count();
        self.delayed[l].clear();
        self.delayed_keys[l].clear();
        nv.count = nv.count.saturating_sub(dropped);
        // Re-home the in-flight operation and the queue (in arrival
        // order, so surviving mirrors see the same relative order).
        let ids: Vec<TaskId> = self.fg[l].ids().to_vec();
        let mut orphans: Vec<PendingTask> = ids
            .into_iter()
            .filter_map(|id| self.fg[l].remove(id))
            .collect();
        self.dup_tags[l].clear();
        if let Some(fly) = self.inflight[l].take() {
            orphans.push(fly.task);
        }
        for task in orphans {
            if let Some(g) = task.dup {
                if self.dup_started.contains(g) {
                    // A surviving duplicate already ran (or runs) elsewhere.
                    continue;
                }
            }
            self.rehome_task(lay, task, now);
        }
        self.kick(now, nv);
        // Hot spare: arm the rebuild state machine if the plan provides
        // one for this disk, or re-issue a chunk whose copy source died
        // mid-read.
        let mut reissue = false;
        let mut abandon = false;
        if let Some(ctx) = self.faults.as_mut() {
            let spared = ctx.plan.fail_stop.iter().any(|f| f.disk == disk && f.spare);
            if spared && ctx.rebuild.is_none() {
                ctx.rebuild = Some(RebuildState {
                    disk,
                    started: now,
                    next: 0,
                    total: lay.per_disk_data_sectors(),
                    pending: 0,
                    source: usize::MAX,
                    copying: false,
                    writing: false,
                    reads_left: 0,
                });
                self.events.push(
                    now + ctx.plan.rebuild.spare_delay,
                    ColEvent::RebuildStart(disk),
                );
            } else if lay.parity().is_some() {
                // A second dead member leaves the survivor XOR short of
                // the lost data: the rebuild is abandoned and the spare
                // slot stays dead.
                if let Some(r) = ctx.rebuild.take() {
                    abandon = r.copying;
                }
            } else if let Some(r) = ctx.rebuild.as_mut() {
                if r.copying && r.source == disk && r.pending > 0 && !r.writing {
                    r.pending = 0;
                    reissue = true;
                }
            }
        }
        if abandon {
            self.notes.push(Note::Health {
                at: now,
                kind: HealthKind::Rebuilding,
                on: false,
            });
        }
        if reissue {
            self.rebuild_issue_chunk(lay, now, nv);
        }
    }

    /// Re-dispatches a task from a failed disk onto surviving copies.
    fn rehome_task(&mut self, lay: &Layout, task: PendingTask, now: SimTime) {
        match task.kind {
            TaskKind::Delayed => {}
            // A dropped chunk read is re-issued by `on_disk_fail`.
            TaskKind::Rebuild => {}
            TaskKind::WriteAll => {
                // The surviving mirrors hold their own WriteAll tasks; the
                // write only fails outright if no live copy remains.
                let any_live = lay
                    .owner_disks(task.frag)
                    .into_iter()
                    .any(|d| !self.dead[d]);
                self.finish_part(now, task.job, !any_live);
            }
            TaskKind::Read | TaskKind::WriteFirst => {
                let mut groups = std::mem::take(&mut self.group_scratch);
                groups.clear();
                lay.write_groups_into(task.frag, &mut groups);
                compact_live_groups(&mut groups, 0, self.dr, &self.dead);
                if groups.is_empty() {
                    self.finish_part(now, task.job, true);
                } else {
                    self.dispatch_mirrored(
                        task.job, task.frag, task.write, task.kind, &groups, now,
                    );
                }
                groups.clear();
                self.group_scratch = groups;
            }
            TaskKind::ParityRead | TaskKind::ParityWrite => {
                // The whole parity operation replans against the degraded
                // group; sibling legs still queued elsewhere find the op
                // gone and no-op on completion.
                if let Some(op) = self.parity_ops.remove(&task.job) {
                    self.replan_parity_op(lay, now, op);
                }
            }
        }
        self.recycle(task);
    }

    /// The hot spare for a failed disk came online: start copying.
    fn on_rebuild_start(&mut self, lay: &Layout, now: SimTime, disk: usize, nv: &mut Nvram) {
        let ready = self
            .faults
            .as_mut()
            .and_then(|ctx| ctx.rebuild.as_mut())
            .is_some_and(|r| {
                if r.disk == disk && !r.copying {
                    r.copying = true;
                    true
                } else {
                    false
                }
            });
        if ready {
            self.notes.push(Note::Health {
                at: now,
                kind: HealthKind::Rebuilding,
                on: true,
            });
            if lay.parity().is_some() {
                self.parity_rebuild_issue_chunk(lay, now, nv);
            } else {
                self.rebuild_issue_chunk(lay, now, nv);
            }
        }
    }

    /// Queues the next rebuild chunk: one replica-track read on a
    /// surviving mirror, riding its *delayed* queue so foreground work
    /// keeps winning the disk.
    fn rebuild_issue_chunk(&mut self, lay: &Layout, now: SimTime, nv: &mut Nvram) {
        let dm = self.width;
        let Some((spare, next, total, chunk)) = self.faults.as_ref().and_then(|ctx| {
            ctx.rebuild
                .as_ref()
                .filter(|r| r.copying && r.pending == 0)
                .map(|r| (r.disk, r.next, r.total, ctx.plan.rebuild.chunk_sectors))
        }) else {
            return;
        };
        if next >= total {
            return; // completion is accounted in `on_spare_done`
        }
        let mirror = spare % dm;
        let base = spare - mirror;
        let live: Vec<usize> = (0..dm)
            .map(|m| base + m)
            .filter(|&d| d != spare && !self.dead[d])
            .collect();
        if live.is_empty() {
            // No survivor left to copy from: the rebuild is abandoned and
            // the spare slot stays dead.
            if let Some(ctx) = self.faults.as_mut() {
                ctx.rebuild = None;
            }
            self.notes.push(Note::Health {
                at: now,
                kind: HealthKind::Rebuilding,
                on: false,
            });
            return;
        }
        let source = live[(next / u64::from(chunk.max(1))) as usize % live.len()];
        let src_mirror = (source % dm) as u32;
        let Some((target, span)) = lay.rebuild_extent(next, 0, src_mirror, chunk) else {
            // Off the mapped data (never expected before `total`): stop.
            if let Some(ctx) = self.faults.as_mut() {
                if let Some(r) = ctx.rebuild.as_mut() {
                    r.next = r.total;
                }
            }
            return;
        };
        let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
        t.job = u64::MAX;
        t.frag = Fragment {
            lbn: u64::MAX,
            sectors: span,
        };
        t.write = false;
        t.kind = TaskKind::Rebuild;
        t.targets.clear();
        t.targets.push(target);
        t.meta.clear();
        t.meta.push((0, src_mirror as u8));
        t.enqueued = now;
        t.dup = None;
        t.key = (u64::MAX, 0, 0);
        t.attempt = 0;
        t.track = 0;
        let src_l = source - self.base;
        self.delayed[src_l].insert(&self.disks[src_l], t);
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(r) = ctx.rebuild.as_mut() {
                r.source = source;
                r.pending = u64::from(span);
                r.writing = false;
            }
        }
        self.try_dispatch(now, source - self.base, nv);
    }

    /// A rebuild chunk read completed on the copy source: chain all `Dr`
    /// replica writes of the chunk onto the spare.
    fn on_rebuild_read_done(
        &mut self,
        lay: &Layout,
        now: SimTime,
        source: usize,
        task: PendingTask,
        nv: &mut Nvram,
    ) {
        self.recycle(task);
        let dr = self.dr as u32;
        let dm = self.width;
        let Some((spare, next, chunk)) = self.faults.as_ref().and_then(|ctx| {
            ctx.rebuild
                .as_ref()
                .filter(|r| r.copying && r.source == source && r.pending > 0 && !r.writing)
                .map(|r| (r.disk, r.next, ctx.plan.rebuild.chunk_sectors))
        }) else {
            // The rebuild moved on (e.g. abandoned); drop the stale read.
            self.try_dispatch(now, source - self.base, nv);
            return;
        };
        let spare_l = spare - self.base;
        let spare_mirror = (spare % dm) as u32;
        let mut end = now;
        let mut wrote = false;
        let mut rest = std::mem::take(&mut self.write_scratch);
        rest.clear();
        for k in 0..dr {
            if let Some((t, _)) = lay.rebuild_extent(next, k, spare_mirror, chunk) {
                rest.push(t);
            }
        }
        while let Some((i, _)) = rest.iter().enumerate().min_by_key(|(_, t)| {
            self.disks[spare_l]
                .estimate_chained(end, t, true)
                .total()
                .as_nanos()
        }) {
            let b = if wrote {
                self.disks[spare_l].begin_chained(end, &rest[i], true)
            } else {
                self.disks[spare_l].begin(end, &rest[i], true)
            };
            end += b.total();
            wrote = true;
            rest.swap_remove(i);
        }
        self.write_scratch = rest;
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(r) = ctx.rebuild.as_mut() {
                r.writing = true;
            }
        }
        self.report.phys_requests += 1;
        self.events.push(end, ColEvent::SpareDone(spare));
        self.try_dispatch(now, source - self.base, nv);
    }

    /// The spare finished one chunk: advance the rebuild, and on the last
    /// chunk flip the disk back to live.
    fn on_spare_done(&mut self, lay: &Layout, now: SimTime, disk: usize, nv: &mut Nvram) {
        let parity = lay.parity().is_some();
        let mut finished = None;
        let mut chunk_done = false;
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(r) = ctx.rebuild.as_mut() {
                if r.disk == disk && r.writing {
                    r.next += r.pending;
                    r.pending = 0;
                    r.writing = false;
                    chunk_done = true;
                    if !parity {
                        ctx.report.rebuild_chunks += 1;
                    }
                    if r.next >= r.total {
                        finished = Some(r.started);
                    }
                }
            }
            if finished.is_some() {
                ctx.rebuild = None;
                ctx.report.rebuilds_completed += 1;
            }
        }
        if chunk_done && parity {
            // The parity twin of `rebuild_chunks`: chunks XOR-built from
            // the survivors rather than copied from a mirror. Accounted on
            // the shard report, like the other parity counters.
            self.report.faults.reconstruction_chunks += 1;
        }
        match finished {
            Some(started) => {
                if let Some(ctx) = self.faults.as_mut() {
                    ctx.report.rebuild_duration = now.saturating_since(started);
                }
                // Every replica is back in place: return the disk to
                // service for subsequent requests.
                self.dead[disk] = false;
                self.notes.push(Note::Health {
                    at: now,
                    kind: HealthKind::Rebuilding,
                    on: false,
                });
                self.notes.push(Note::Health {
                    at: now,
                    kind: HealthKind::Dead,
                    on: false,
                });
                #[cfg(debug_assertions)]
                lay.check_rebuilt_disk(disk);
                self.try_dispatch(now, disk - self.base, nv);
            }
            None => {
                if parity {
                    self.parity_rebuild_issue_chunk(lay, now, nv);
                } else {
                    self.rebuild_issue_chunk(lay, now, nv);
                }
            }
        }
    }
}
