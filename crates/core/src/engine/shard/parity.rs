//! Parity-organization dispatch (RAID 4/5): the shard-side state machine
//! for reads, small-write RMWs, full-stripe writes, degraded
//! reconstruction reads, and spare rebuilds on XOR-parity groups.
//!
//! A parity operation fans a routed fragment out into *legs* — one
//! [`TaskKind::ParityRead`] / [`TaskKind::ParityWrite`] per member disk —
//! tracked by a [`ParityOp`] keyed by operation id (each leg carries the
//! id in its `job` field). A read–modify–write runs in two phases: the
//! old-value reads drain, then the buffered write legs issue. A member
//! failure mid-operation replans the whole op against the degraded group;
//! orphaned sibling legs find their op gone and no-op on completion.
//!
//! Everything here stays on the `G` disks of one group (one shard), uses
//! no RNG, and emits only pre-existing event kinds — which is what keeps
//! the determinism-witness contract untouched.

use mimd_disk::Target;
use mimd_sim::SimTime;

use crate::layout::{Fragment, Layout};

use super::{ColEvent, HealthKind, Note, Nvram, PendingTask, Shard, TaskKind};

/// One in-flight parity operation: the fan-out bookkeeping for a single
/// routed fragment.
#[derive(Debug)]
pub(crate) struct ParityOp {
    /// Owning shard-local job (for the completion note).
    job: u64,
    /// The original fragment, kept for replanning after a member failure.
    frag: Fragment,
    write: bool,
    stripe: bool,
    /// Legs still outstanding in the current phase.
    remaining: u32,
    /// Write legs issued when the read phase drains (RMW phase 2).
    writes: Vec<(usize, Target)>,
}

impl Shard {
    /// Plans one routed fragment of a parity organization: a single job
    /// part that completes (or fails) when the whole operation does.
    pub(super) fn submit_parity_frag(
        &mut self,
        lay: &Layout,
        now: SimTime,
        logical: u64,
        frag: Fragment,
        write: bool,
        stripe: bool,
    ) {
        let job = self.next_job;
        self.next_job += 1;
        self.jobs.insert(job, logical, 1);
        self.plan_parity(lay, now, job, frag, write, stripe);
    }

    fn plan_parity(
        &mut self,
        lay: &Layout,
        now: SimTime,
        job: u64,
        frag: Fragment,
        write: bool,
        stripe: bool,
    ) {
        if !write {
            self.plan_parity_read(lay, now, job, frag);
        } else if stripe {
            self.plan_parity_stripe_write(lay, now, job, frag);
        } else {
            self.plan_parity_small_write(lay, now, job, frag);
        }
    }

    fn plan_parity_read(&mut self, lay: &Layout, now: SimTime, job: u64, frag: Fragment) {
        let Some(loc) = lay.parity_locate(frag) else {
            self.finish_part(now, job, true);
            return;
        };
        if !self.dead[loc.data_disk] {
            let op = self.new_parity_op(job, frag, false, false, 1, Vec::new());
            self.issue_parity_leg(op, frag, false, loc.data_disk, loc.target, now);
            return;
        }
        // Degraded read: the lost block is the XOR of all `G−1` survivor
        // blocks in its row, so every other member must be read.
        let survivors: Vec<usize> = lay
            .parity_members(loc.group)
            .filter(|&d| d != loc.data_disk && !self.dead[d])
            .collect();
        if survivors.len() != self.width - 1 {
            // A second dead member makes the XOR short: unrecoverable.
            self.finish_part(now, job, true);
            return;
        }
        self.report.faults.degraded_reads += 1;
        let op = self.new_parity_op(job, frag, false, false, survivors.len() as u32, Vec::new());
        for d in survivors {
            self.issue_parity_leg(op, frag, false, d, loc.target, now);
        }
    }

    fn plan_parity_small_write(&mut self, lay: &Layout, now: SimTime, job: u64, frag: Fragment) {
        let Some(loc) = lay.parity_locate(frag) else {
            self.finish_part(now, job, true);
            return;
        };
        let data_dead = self.dead[loc.data_disk];
        let parity_dead = self.dead[loc.parity_disk];
        if data_dead && parity_dead {
            self.finish_part(now, job, true);
        } else if !data_dead && !parity_dead {
            // Healthy read–modify–write: read old data + old parity, then
            // write new data + new parity.
            self.report.faults.rmw_updates += 1;
            let writes = vec![(loc.data_disk, loc.target), (loc.parity_disk, loc.target)];
            let op = self.new_parity_op(job, frag, true, false, 2, writes);
            self.issue_parity_leg(op, frag, false, loc.data_disk, loc.target, now);
            self.issue_parity_leg(op, frag, false, loc.parity_disk, loc.target, now);
        } else if parity_dead {
            // The row's parity is lost but the data disk lives: a plain
            // data write (parity is restored wholesale by the rebuild).
            let op = self.new_parity_op(job, frag, true, false, 1, Vec::new());
            self.issue_parity_leg(op, frag, true, loc.data_disk, loc.target, now);
        } else {
            // Data disk dead: fold the new block into parity instead —
            // read the `G−2` surviving data peers, then write parity as
            // the XOR of peers + new data.
            let peers: Vec<usize> = lay
                .parity_members(loc.group)
                .filter(|&d| d != loc.data_disk && d != loc.parity_disk && !self.dead[d])
                .collect();
            if peers.len() != self.width - 2 {
                self.finish_part(now, job, true);
                return;
            }
            let writes = vec![(loc.parity_disk, loc.target)];
            let op = self.new_parity_op(job, frag, true, false, peers.len() as u32, writes);
            for d in peers {
                self.issue_parity_leg(op, frag, false, d, loc.target, now);
            }
        }
    }

    fn plan_parity_stripe_write(&mut self, lay: &Layout, now: SimTime, job: u64, frag: Fragment) {
        let Some((group, _row, target)) = lay.parity_stripe(frag) else {
            self.finish_part(now, job, true);
            return;
        };
        // Parity comes straight from the new data: every live member —
        // data and parity alike — writes its unit of the row, no
        // old-value reads.
        let live: Vec<usize> = lay
            .parity_members(group)
            .filter(|&d| !self.dead[d])
            .collect();
        if live.is_empty() {
            self.finish_part(now, job, true);
            return;
        }
        let op = self.new_parity_op(job, frag, true, true, live.len() as u32, Vec::new());
        for d in live {
            self.issue_parity_leg(op, frag, true, d, target, now);
        }
    }

    fn new_parity_op(
        &mut self,
        job: u64,
        frag: Fragment,
        write: bool,
        stripe: bool,
        remaining: u32,
        writes: Vec<(usize, Target)>,
    ) -> u64 {
        let id = self.next_parity_op;
        self.next_parity_op += 1;
        self.parity_ops.insert(
            id,
            ParityOp {
                job,
                frag,
                write,
                stripe,
                remaining,
                writes,
            },
        );
        id
    }

    /// Queues one leg of a parity operation on `disk`, recording it for
    /// the caller's next `kick`.
    fn issue_parity_leg(
        &mut self,
        op: u64,
        frag: Fragment,
        write: bool,
        disk: usize,
        target: Target,
        now: SimTime,
    ) {
        let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
        t.job = op;
        t.frag = frag;
        t.write = write;
        t.kind = if write {
            TaskKind::ParityWrite
        } else {
            TaskKind::ParityRead
        };
        t.targets.clear();
        t.targets.push(target);
        t.meta.clear();
        t.meta.push((0, (disk - self.base) as u8));
        t.enqueued = now;
        t.dup = None;
        t.key = (frag.lbn, 0, 0);
        t.attempt = 0;
        t.track = 0;
        self.enqueue(disk, t);
        self.touched.push(disk - self.base);
    }

    /// One leg of a parity operation completed on `disk`: count it down,
    /// and on the last leg either finish the job or flip an RMW into its
    /// write phase.
    pub(super) fn on_parity_done(
        &mut self,
        now: SimTime,
        disk: usize,
        task: PendingTask,
        nv: &mut Nvram,
    ) {
        let l = disk - self.base;
        let op_id = task.job;
        self.recycle(task);
        enum Next {
            /// More legs outstanding, or an orphan of a replanned op.
            Wait,
            Finish(u64),
            Phase2,
        }
        let next = match self.parity_ops.get_mut(&op_id) {
            None => Next::Wait,
            Some(op) => {
                op.remaining -= 1;
                if op.remaining > 0 {
                    Next::Wait
                } else if op.writes.is_empty() {
                    Next::Finish(op.job)
                } else {
                    Next::Phase2
                }
            }
        };
        match next {
            Next::Wait => {}
            Next::Finish(job) => {
                self.parity_ops.remove(&op_id);
                self.finish_part(now, job, false);
            }
            Next::Phase2 => {
                // The read phase drained: issue the buffered write legs on
                // members still alive (a member lost since planning gets
                // its content back from the rebuild instead).
                let Some(mut op) = self.parity_ops.remove(&op_id) else {
                    return;
                };
                let writes = std::mem::take(&mut op.writes);
                let frag = op.frag;
                let mut issued = 0u32;
                for (d, t) in writes {
                    if self.dead[d] {
                        continue;
                    }
                    self.issue_parity_leg(op_id, frag, true, d, t, now);
                    issued += 1;
                }
                if issued == 0 {
                    self.finish_part(now, op.job, true);
                } else {
                    op.remaining = issued;
                    self.parity_ops.insert(op_id, op);
                }
            }
        }
        self.kick(now, nv);
        self.try_dispatch(now, l, nv);
    }

    /// A transient media error on a parity leg: retry in place — a parity
    /// organization holds no alternate copy of a block — and fail the
    /// whole operation when the attempt budget runs out. The caller's
    /// tail `try_dispatch` restarts the disk.
    pub(super) fn on_parity_media_error(
        &mut self,
        now: SimTime,
        disk: usize,
        mut task: PendingTask,
    ) {
        let budget = self
            .faults
            .as_ref()
            .map_or(0, |ctx| ctx.plan.retry.max_retries);
        if task.attempt >= budget {
            if let Some(ctx) = self.faults.as_mut() {
                ctx.report.unrecoverable += 1;
            }
            if let Some(op) = self.parity_ops.remove(&task.job) {
                self.finish_part(now, op.job, true);
            }
            self.recycle(task);
            return;
        }
        task.attempt += 1;
        task.enqueued = now;
        task.dup = None;
        if let Some(ctx) = self.faults.as_mut() {
            ctx.report.retries += 1;
        }
        self.enqueue(disk, task);
    }

    /// Replans a parity operation after a member failure dropped one of
    /// its legs: progress in the current phase is discarded and the
    /// fragment is planned afresh against the degraded group.
    pub(super) fn replan_parity_op(&mut self, lay: &Layout, now: SimTime, op: ParityOp) {
        self.plan_parity(lay, now, op.job, op.frag, op.write, op.stripe);
    }

    /// Queues the next parity-rebuild chunk: one chunk read on *every*
    /// survivor of the spare's group (their XOR is the lost content),
    /// riding the delayed queues so foreground work keeps winning.
    pub(super) fn parity_rebuild_issue_chunk(
        &mut self,
        lay: &Layout,
        now: SimTime,
        nv: &mut Nvram,
    ) {
        let Some((spare, next, total, chunk)) = self.faults.as_ref().and_then(|ctx| {
            ctx.rebuild
                .as_ref()
                .filter(|r| r.copying && r.pending == 0)
                .map(|r| (r.disk, r.next, r.total, ctx.plan.rebuild.chunk_sectors))
        }) else {
            return;
        };
        if next >= total {
            return; // completion is accounted in `on_spare_done`
        }
        let survivors: Vec<usize> = (self.base..self.base + self.width)
            .filter(|&d| d != spare && !self.dead[d])
            .collect();
        if survivors.len() != self.width - 1 {
            // Reconstruction needs every survivor; a second dead member
            // makes the XOR short, so abandon and leave the spare dead.
            if let Some(ctx) = self.faults.as_mut() {
                ctx.rebuild = None;
            }
            self.notes.push(Note::Health {
                at: now,
                kind: HealthKind::Rebuilding,
                on: false,
            });
            return;
        }
        let Some((target, span)) = lay.rebuild_extent(next, 0, 0, chunk) else {
            // Off the mapped data (never expected before `total`): stop.
            if let Some(ctx) = self.faults.as_mut() {
                if let Some(r) = ctx.rebuild.as_mut() {
                    r.next = r.total;
                }
            }
            return;
        };
        for &src in &survivors {
            let mut t = self.task_pool.pop().unwrap_or_else(PendingTask::shell);
            t.job = u64::MAX;
            t.frag = Fragment {
                lbn: u64::MAX,
                sectors: span,
            };
            t.write = false;
            t.kind = TaskKind::Rebuild;
            t.targets.clear();
            t.targets.push(target);
            t.meta.clear();
            t.meta.push((0, 0));
            t.enqueued = now;
            t.dup = None;
            t.key = (u64::MAX, 0, 0);
            t.attempt = 0;
            t.track = 0;
            let src_l = src - self.base;
            self.delayed[src_l].insert(&self.disks[src_l], t);
        }
        if let Some(ctx) = self.faults.as_mut() {
            if let Some(r) = ctx.rebuild.as_mut() {
                r.source = usize::MAX;
                r.pending = u64::from(span);
                r.writing = false;
                r.reads_left = survivors.len() as u32;
            }
        }
        for &src in &survivors {
            self.try_dispatch(now, src - self.base, nv);
        }
    }

    /// One survivor finished its rebuild chunk read. When the last one
    /// reports, the XOR-reconstructed chunk is written onto the spare.
    pub(super) fn on_parity_rebuild_read_done(
        &mut self,
        lay: &Layout,
        now: SimTime,
        source: usize,
        task: PendingTask,
        nv: &mut Nvram,
    ) {
        self.recycle(task);
        let state = self
            .faults
            .as_mut()
            .and_then(|ctx| ctx.rebuild.as_mut())
            .filter(|r| r.copying && r.pending > 0 && !r.writing && r.reads_left > 0)
            .map(|r| {
                r.reads_left -= 1;
                (r.disk, r.next, r.reads_left)
            });
        let Some((spare, next, left)) = state else {
            // The rebuild moved on (e.g. was abandoned); drop the stale
            // read and let the source disk continue.
            self.try_dispatch(now, source - self.base, nv);
            return;
        };
        if left == 0 {
            let chunk = self
                .faults
                .as_ref()
                .map_or(0, |ctx| ctx.plan.rebuild.chunk_sectors);
            if let Some((target, _)) = lay.rebuild_extent(next, 0, 0, chunk) {
                let spare_l = spare - self.base;
                let b = self.disks[spare_l].begin(now, &target, true);
                if let Some(ctx) = self.faults.as_mut() {
                    if let Some(r) = ctx.rebuild.as_mut() {
                        r.writing = true;
                    }
                }
                self.report.phys_requests += 1;
                self.events
                    .push(now + b.total(), ColEvent::SpareDone(spare));
            }
        }
        self.try_dispatch(now, source - self.base, nv);
    }
}
