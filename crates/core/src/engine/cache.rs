//! The volatile memory cache used by the §4.1 "Comparison Against Memory
//! Caching" experiment (Figure 11).
//!
//! An LRU cache over 4 KiB blocks sits in front of the array. Reads whose
//! blocks are all resident complete at memory speed; synchronous writes are
//! "forced to disks in both alternatives" but leave their blocks resident,
//! so the read-after-write traffic of Table 3 becomes cache hits.

use std::collections::BTreeMap;

/// Sectors per cache block (4 KiB).
pub const CACHE_BLOCK_SECTORS: u64 = 8;

/// An LRU block cache.
///
/// # Examples
///
/// ```
/// use mimd_core::engine::cache::LruCache;
///
/// let mut c = LruCache::new(2 * 4096);
/// c.insert_range(0, 8);
/// assert!(c.contains_range(0, 8));
/// assert!(!c.contains_range(8, 8));
/// ```
#[derive(Debug)]
pub struct LruCache {
    capacity_blocks: usize,
    /// Block id -> LRU stamp. Ordered map so eviction tie-breaks (and
    /// hence simulated cache contents) are reproducible across runs.
    stamps: BTreeMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates a cache of the given size in bytes (rounded down to whole
    /// 4 KiB blocks; a zero capacity caches nothing).
    pub fn new(bytes: u64) -> Self {
        LruCache {
            capacity_blocks: (bytes / (CACHE_BLOCK_SECTORS * 512)) as usize,
            stamps: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Resident blocks.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Hits recorded by [`LruCache::lookup_range`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`LruCache::lookup_range`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn blocks(lbn: u64, sectors: u32) -> std::ops::RangeInclusive<u64> {
        let first = lbn / CACHE_BLOCK_SECTORS;
        let last = (lbn + sectors as u64 - 1) / CACHE_BLOCK_SECTORS;
        first..=last
    }

    /// Whether every block of the range is resident (no LRU update).
    pub fn contains_range(&self, lbn: u64, sectors: u32) -> bool {
        if sectors == 0 || self.capacity_blocks == 0 {
            return false;
        }
        Self::blocks(lbn, sectors).all(|b| self.stamps.contains_key(&b))
    }

    /// Checks residency, counts the hit/miss, and refreshes LRU stamps on a
    /// hit. Returns whether the whole range was resident.
    pub fn lookup_range(&mut self, lbn: u64, sectors: u32) -> bool {
        let hit = self.contains_range(lbn, sectors);
        if hit {
            self.hits += 1;
            self.clock += 1;
            let clock = self.clock;
            for b in Self::blocks(lbn, sectors) {
                self.stamps.insert(b, clock);
            }
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Makes a range resident (evicting LRU blocks as needed).
    pub fn insert_range(&mut self, lbn: u64, sectors: u32) {
        if sectors == 0 || self.capacity_blocks == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        for b in Self::blocks(lbn, sectors) {
            self.stamps.insert(b, clock);
        }
        while self.stamps.len() > self.capacity_blocks {
            // Evict the least-recently-stamped block. Linear scan keeps the
            // structure simple; eviction batches are tiny relative to the
            // simulated I/O cost.
            if let Some((&victim, _)) = self.stamps.iter().min_by_key(|(_, &s)| s) {
                self.stamps.remove(&victim);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = LruCache::new(0);
        c.insert_range(0, 64);
        assert!(!c.lookup_range(0, 8));
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn insert_then_hit() {
        let mut c = LruCache::new(16 * 4096);
        c.insert_range(0, 16); // Blocks 0, 1.
        assert!(c.lookup_range(0, 8));
        assert!(c.lookup_range(8, 8));
        assert!(c.lookup_range(0, 16));
        assert!(!c.lookup_range(16, 8));
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn partial_residency_is_a_miss() {
        let mut c = LruCache::new(16 * 4096);
        c.insert_range(0, 8);
        assert!(!c.lookup_range(0, 16));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = LruCache::new(2 * 4096); // Two blocks.
        c.insert_range(0, 8); // Block 0.
        c.insert_range(8, 8); // Block 1.
        c.insert_range(16, 8); // Block 2 evicts block 0.
        assert!(!c.contains_range(0, 8));
        assert!(c.contains_range(8, 8));
        assert!(c.contains_range(16, 8));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lookup_refreshes_recency() {
        let mut c = LruCache::new(2 * 4096);
        c.insert_range(0, 8);
        c.insert_range(8, 8);
        assert!(c.lookup_range(0, 8)); // Touch block 0.
        c.insert_range(16, 8); // Should evict block 1, not 0.
        assert!(c.contains_range(0, 8));
        assert!(!c.contains_range(8, 8));
    }

    #[test]
    fn unaligned_ranges_cover_their_blocks() {
        let mut c = LruCache::new(64 * 4096);
        c.insert_range(4, 8); // Spans blocks 0 and 1.
        assert!(c.contains_range(0, 8));
        assert!(c.contains_range(8, 8));
    }
}
