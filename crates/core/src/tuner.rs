//! Dynamic configuration tuning — the paper's stated future work.
//!
//! "We are currently researching a wide range of access patterns ... that
//! can be used to dynamically tune the array configuration" (§5, after
//! Ivy). This module closes that loop: a [`WorkloadObserver`] derives the
//! model inputs (`rate`, `p`, `L`, read mix) from the live request stream,
//! and an [`Advisor`] re-runs the Section 2 models against the current
//! shape, recommending a reconfiguration only when the predicted gain
//! clears a hysteresis threshold *and* pays back its migration cost within
//! a configurable horizon.

use mimd_disk::DiskParams;
use mimd_sim::SimDuration;
use mimd_workload::{Op, Request};

use crate::config::Shape;
use crate::models::{recommend_latency_shape, rw_latency, DiskCharacter};

/// A windowed summary of observed workload character, in model terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Observed request rate, per second.
    pub rate_per_sec: f64,
    /// Fraction of requests that are reads.
    pub read_frac: f64,
    /// Fraction of requests that are synchronous writes.
    pub sync_write_frac: f64,
    /// Seek-locality index `L` over the window.
    pub locality: f64,
    /// Equation (8)'s `p`, under the masking heuristic described at
    /// [`WorkloadObserver::snapshot`].
    pub p: f64,
    /// Requests observed.
    pub observed: u64,
}

/// Accumulates request-stream statistics over a sliding window.
///
/// # Examples
///
/// ```
/// use mimd_core::tuner::WorkloadObserver;
/// use mimd_workload::SyntheticSpec;
///
/// let trace = SyntheticSpec::cello_base().generate(1, 2_000);
/// let mut obs = WorkloadObserver::new(trace.data_sectors, 6);
/// for r in trace.requests() {
///     obs.observe(r);
/// }
/// let profile = obs.snapshot().unwrap();
/// assert!(profile.read_frac > 0.4);
/// assert!(profile.locality > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadObserver {
    data_sectors: u64,
    disks: u32,
    reads: u64,
    sync_writes: u64,
    async_writes: u64,
    hop_sum: f64,
    hop_n: u64,
    prev_lbn: Option<u64>,
    first_arrival: Option<mimd_sim::SimTime>,
    last_arrival: mimd_sim::SimTime,
    /// Assumed mean service time per request, for the utilisation proxy.
    service_ms: f64,
}

impl WorkloadObserver {
    /// Creates an observer for a data set served by `disks` disks.
    pub fn new(data_sectors: u64, disks: u32) -> Self {
        WorkloadObserver {
            data_sectors,
            disks: disks.max(1),
            reads: 0,
            sync_writes: 0,
            async_writes: 0,
            hop_sum: 0.0,
            hop_n: 0,
            prev_lbn: None,
            first_arrival: None,
            last_arrival: mimd_sim::SimTime::ZERO,
            service_ms: 5.0,
        }
    }

    /// Feeds one request.
    pub fn observe(&mut self, r: &Request) {
        match r.op {
            Op::Read => self.reads += 1,
            Op::SyncWrite => self.sync_writes += 1,
            Op::AsyncWrite => self.async_writes += 1,
        }
        if let Some(prev) = self.prev_lbn {
            self.hop_sum += prev.abs_diff(r.lbn) as f64;
            self.hop_n += 1;
        }
        self.prev_lbn = Some(r.lbn);
        if self.first_arrival.is_none() {
            self.first_arrival = Some(r.arrival);
        }
        self.last_arrival = r.arrival;
    }

    /// Resets the window (keeps the configuration).
    pub fn reset(&mut self) {
        let (data, disks) = (self.data_sectors, self.disks);
        *self = WorkloadObserver::new(data, disks);
    }

    /// Total requests observed in the current window.
    pub fn observed(&self) -> u64 {
        self.reads + self.sync_writes + self.async_writes
    }

    /// Summarises the window; `None` below a minimum of 100 requests.
    ///
    /// The `p` heuristic: background propagation masks write replicas while
    /// the array has idle time. We proxy idleness with utilisation
    /// `u = rate × service / disks`; the foreground share of sync writes
    /// ramps linearly from 0 at u ≤ 50 % to 1 at u ≥ 100 %.
    pub fn snapshot(&self) -> Option<WorkloadProfile> {
        let n = self.observed();
        if n < 100 {
            return None;
        }
        let span = self
            .last_arrival
            .saturating_since(self.first_arrival.unwrap_or(mimd_sim::SimTime::ZERO))
            .as_secs_f64();
        let rate = if span > 0.0 {
            (n - 1) as f64 / span
        } else {
            0.0
        };
        let mean_hop = if self.hop_n > 0 {
            self.hop_sum / self.hop_n as f64
        } else {
            0.0
        };
        let locality = if mean_hop > 0.0 {
            (self.data_sectors as f64 / 3.0 / mean_hop).max(1.0)
        } else {
            1.0
        };
        let read_frac = self.reads as f64 / n as f64;
        let sync_write_frac = self.sync_writes as f64 / n as f64;
        let utilisation =
            rate * self.service_ms / mimd_sim::time::MILLIS_PER_SEC / self.disks as f64;
        let foreground_share = ((utilisation - 0.5) / 0.5).clamp(0.0, 1.0);
        let p = 1.0 - sync_write_frac * foreground_share;
        Some(WorkloadProfile {
            rate_per_sec: rate,
            read_frac,
            sync_write_frac,
            locality,
            p,
            observed: n,
        })
    }
}

/// A reconfiguration recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Advice {
    /// The current shape remains (near-)optimal.
    Stay,
    /// Reconfigure: the predicted gain clears the thresholds.
    Reconfigure {
        /// The recommended shape.
        shape: Shape,
        /// Predicted mean-latency ratio `current / recommended` (> 1).
        predicted_gain: f64,
        /// Estimated migration time at sequential disk bandwidth.
        migration: SimDuration,
    },
}

/// Recommends shape changes from observed profiles, with hysteresis.
#[derive(Debug, Clone)]
pub struct Advisor {
    character: DiskCharacter,
    params: DiskParams,
    data_sectors: u64,
    /// Minimum predicted latency ratio before recommending a move.
    pub min_gain: f64,
}

impl Advisor {
    /// Creates an advisor for a drive type and data-set size.
    pub fn new(params: DiskParams, data_sectors: u64) -> Self {
        Advisor {
            character: DiskCharacter::from_params(&params),
            params,
            data_sectors,
            min_gain: 1.10,
        }
    }

    /// Estimated time to re-lay the whole data set across the array at
    /// sequential media bandwidth (read old + write new, overlapped across
    /// disks).
    pub fn estimate_migration(&self, to: Shape) -> SimDuration {
        let geometry = mimd_disk::Geometry::new(&self.params);
        let sectors_per_sec =
            geometry.avg_sectors_per_track() / self.params.rotation_time().as_secs_f64();
        // Each disk rewrites its own share (data * Dr / D), reading and
        // writing once; disks work in parallel.
        let per_disk = self.data_sectors as f64 * to.dr as f64 / to.disks() as f64 * 2.0;
        SimDuration::from_secs_f64(per_disk / sectors_per_sec)
    }

    /// Evaluates the current shape against the model's pick for `profile`.
    ///
    /// Keeps the current mirroring degree `Dm` (reliability is a policy
    /// choice, not a tuning knob) and redistributes `D / Dm` heads between
    /// striping and rotational replication.
    pub fn recommend(&self, profile: &WorkloadProfile, current: Shape) -> Advice {
        let c = self.character.with_locality(profile.locality);
        let heads = current.disks() / current.dm;
        let sr = recommend_latency_shape(&c, heads, profile.p);
        let candidate = Shape {
            ds: sr.ds,
            dr: sr.dr,
            dm: current.dm,
        };
        if candidate == current {
            return Advice::Stay;
        }
        // Compare by Equation (9), folding Dm into the rotational degree
        // the way §2.5 suggests for SR-Mirrors.
        let eff = |s: Shape| rw_latency(&c, s.ds, (s.dr * s.dm).min(6), profile.p);
        let cur_t = eff(current) + c.overhead_ms;
        let new_t = eff(candidate) + c.overhead_ms;
        let gain = cur_t / new_t;
        if gain >= self.min_gain {
            Advice::Reconfigure {
                shape: candidate,
                predicted_gain: gain,
                migration: self.estimate_migration(candidate),
            }
        } else {
            Advice::Stay
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimd_sim::SimTime;
    use mimd_workload::SyntheticSpec;

    fn req(at_ms: u64, op: Op, lbn: u64) -> Request {
        Request {
            id: 0,
            arrival: SimTime::from_millis(at_ms),
            op,
            lbn,
            sectors: 8,
        }
    }

    #[test]
    fn observer_needs_a_minimum_window() {
        let mut obs = WorkloadObserver::new(1_000_000, 6);
        for i in 0..99 {
            obs.observe(&req(i * 10, Op::Read, i * 1_000));
        }
        assert!(obs.snapshot().is_none());
        obs.observe(&req(1_000, Op::Read, 0));
        assert!(obs.snapshot().is_some());
    }

    #[test]
    fn observer_recovers_cello_character() {
        let trace = SyntheticSpec::cello_base().generate(4, 5_000);
        let mut obs = WorkloadObserver::new(trace.data_sectors, 6);
        for r in trace.requests() {
            obs.observe(r);
        }
        let p = obs.snapshot().expect("window full");
        assert!((p.read_frac - 0.552).abs() < 0.03, "reads {}", p.read_frac);
        assert!((p.locality - 4.14).abs() < 1.0, "L {}", p.locality);
        assert!(
            (p.rate_per_sec - 2.84).abs() < 0.4,
            "rate {}",
            p.rate_per_sec
        );
        // At 2.84/s over 6 disks the array idles; writes are masked.
        assert!(p.p > 0.95, "p {}", p.p);
    }

    #[test]
    fn observer_sees_foreground_pressure_at_high_rates() {
        let mut obs = WorkloadObserver::new(16_000_000, 2);
        // 50% sync writes at 600/s over 2 disks: utilisation 1.5 >> 1.
        for i in 0..1_000u64 {
            let op = if i % 2 == 0 { Op::Read } else { Op::SyncWrite };
            obs.observe(&Request {
                id: 0,
                arrival: SimTime::from_micros(i * 1_666),
                op,
                lbn: (i * 37_777) % 16_000_000,
                sectors: 8,
            });
        }
        let p = obs.snapshot().expect("window full");
        assert!(p.p < 0.6, "p {}", p.p);
    }

    #[test]
    fn reset_clears_the_window() {
        let mut obs = WorkloadObserver::new(1_000_000, 4);
        for i in 0..200 {
            obs.observe(&req(i, Op::Read, i * 100));
        }
        obs.reset();
        assert_eq!(obs.observed(), 0);
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn advisor_stays_when_current_is_optimal() {
        let advisor = Advisor::new(DiskParams::st39133lwv(), 16_400_000);
        let profile = WorkloadProfile {
            rate_per_sec: 3.0,
            read_frac: 0.55,
            sync_write_frac: 0.25,
            locality: 4.14,
            p: 1.0,
            observed: 5_000,
        };
        // 2x3 is the model's pick for this profile at six heads.
        assert_eq!(
            advisor.recommend(&profile, Shape::sr_array(2, 3).expect("valid")),
            Advice::Stay
        );
    }

    #[test]
    fn advisor_moves_off_striping_for_read_heavy_profiles() {
        let advisor = Advisor::new(DiskParams::st39133lwv(), 16_400_000);
        let profile = WorkloadProfile {
            rate_per_sec: 3.0,
            read_frac: 0.9,
            sync_write_frac: 0.05,
            locality: 4.0,
            p: 1.0,
            observed: 5_000,
        };
        match advisor.recommend(&profile, Shape::striping(6)) {
            Advice::Reconfigure {
                shape,
                predicted_gain,
                migration,
            } => {
                assert!(shape.dr > 1, "should buy replicas: {shape}");
                assert!(predicted_gain > 1.1);
                assert!(migration > SimDuration::ZERO);
            }
            Advice::Stay => panic!("expected a reconfiguration"),
        }
    }

    #[test]
    fn advisor_moves_to_striping_under_write_pressure() {
        let advisor = Advisor::new(DiskParams::st39133lwv(), 16_400_000);
        let profile = WorkloadProfile {
            rate_per_sec: 900.0,
            read_frac: 0.3,
            sync_write_frac: 0.7,
            locality: 1.1,
            p: 0.4,
            observed: 5_000,
        };
        match advisor.recommend(&profile, Shape::sr_array(2, 3).expect("valid")) {
            Advice::Reconfigure { shape, .. } => {
                assert_eq!(shape, Shape::striping(6));
            }
            Advice::Stay => panic!("expected a reconfiguration"),
        }
    }

    #[test]
    fn advisor_preserves_mirroring_degree() {
        let advisor = Advisor::new(DiskParams::st39133lwv(), 8_000_000);
        let profile = WorkloadProfile {
            rate_per_sec: 3.0,
            read_frac: 0.9,
            sync_write_frac: 0.05,
            locality: 8.0,
            p: 1.0,
            observed: 5_000,
        };
        let current = Shape::raid10(12).expect("even"); // 6x1x2.
        if let Advice::Reconfigure { shape, .. } = advisor.recommend(&profile, current) {
            assert_eq!(shape.dm, 2, "mirroring is a policy choice: {shape}");
            assert_eq!(shape.disks(), 12);
        }
    }

    #[test]
    fn hysteresis_suppresses_marginal_moves() {
        let mut advisor = Advisor::new(DiskParams::st39133lwv(), 16_400_000);
        advisor.min_gain = 10.0; // Absurdly high bar: nothing clears it.
        let profile = WorkloadProfile {
            rate_per_sec: 3.0,
            read_frac: 0.9,
            sync_write_frac: 0.05,
            locality: 4.0,
            p: 1.0,
            observed: 5_000,
        };
        assert_eq!(
            advisor.recommend(&profile, Shape::striping(6)),
            Advice::Stay
        );
    }

    #[test]
    fn migration_estimate_scales_with_replication() {
        let advisor = Advisor::new(DiskParams::st39133lwv(), 16_400_000);
        let light = advisor.estimate_migration(Shape::striping(6));
        let heavy = advisor.estimate_migration(Shape::sr_array(1, 6).expect("valid"));
        assert!(heavy > light * 5, "light {light}, heavy {heavy}");
    }
}
