//! Property tests for the Section 2 models and the optimizer.

use proptest::prelude::*;

use mimd_core::models::{
    best_read_latency, best_rlook_time, best_rw_latency, optimal_read_aspect, optimal_rw_aspect,
    read_latency, recommend_latency_shape, recommend_throughput_shape, rlook_request_time,
    rw_latency, DiskCharacter, MAX_DR,
};
use mimd_core::Shape;

fn arb_character() -> impl Strategy<Value = DiskCharacter> {
    (4.0f64..30.0, 3.0f64..12.0, 0.2f64..4.0).prop_map(|(s, r, o)| DiskCharacter {
        s_ms: s,
        r_ms: r,
        overhead_ms: o,
    })
}

proptest! {
    #[test]
    fn continuous_optimum_product_is_d(c in arb_character(), d in 1u32..64) {
        let (ds, dr) = optimal_read_aspect(&c, d);
        prop_assert!((ds * dr - d as f64).abs() < 1e-6);
        prop_assert!(ds > 0.0 && dr > 0.0);
    }

    #[test]
    fn eq6_is_a_lower_envelope_of_eq4(c in arb_character(), d in 1u32..64) {
        let best = best_read_latency(&c, d);
        for shape in Shape::enumerate_sr(d, d.max(1)) {
            let t = read_latency(&c, shape.ds, shape.dr);
            prop_assert!(t >= best - 1e-9, "{shape}: {t} < {best}");
        }
    }

    #[test]
    fn eq11_is_a_lower_envelope_of_eq9(c in arb_character(), d in 1u32..64, p in 0.51f64..1.0) {
        let best = best_rw_latency(&c, d, p).expect("p > 0.5");
        for shape in Shape::enumerate_sr(d, d.max(1)) {
            let t = rw_latency(&c, shape.ds, shape.dr, p);
            prop_assert!(t >= best - 1e-9, "{shape}: {t} < {best}");
        }
    }

    #[test]
    fn eq14_is_a_lower_envelope_of_eq12(
        c in arb_character(),
        d in 1u32..64,
        p in 0.51f64..1.0,
        q in 3.1f64..64.0,
    ) {
        let best = best_rlook_time(&c, d, p, q).expect("p > 0.5");
        for shape in Shape::enumerate_sr(d, d.max(1)) {
            let t = rlook_request_time(&c, shape.ds, shape.dr, p, q);
            prop_assert!(t >= best - 1e-9, "{shape}: {t} < {best}");
        }
    }

    #[test]
    fn latency_improves_monotonically_with_budget(c in arb_character(), p in 0.6f64..1.0) {
        let mut prev = f64::INFINITY;
        for d in 1..=32u32 {
            let t = best_rw_latency(&c, d, p).expect("p > 0.5");
            prop_assert!(t <= prev + 1e-12, "d={d}");
            prev = t;
        }
    }

    #[test]
    fn recommendation_is_well_formed(c in arb_character(), d in 1u32..64, p in 0.0f64..1.0) {
        let s = recommend_latency_shape(&c, d, p);
        prop_assert_eq!(s.disks(), d);
        prop_assert_eq!(s.dm, 1);
        prop_assert!(s.dr <= MAX_DR || s.dr == 1);
        prop_assert_eq!(d % s.dr, 0);
        if p <= 0.5 {
            prop_assert_eq!(s, Shape::striping(d));
        }
    }

    #[test]
    fn throughput_recommendation_is_well_formed(
        c in arb_character(),
        d in 1u32..64,
        p in 0.0f64..1.0,
        q in 0.5f64..64.0,
    ) {
        let s = recommend_throughput_shape(&c, d, p, q);
        prop_assert_eq!(s.disks(), d);
        prop_assert!(s.dr <= MAX_DR || s.dr == 1);
    }

    #[test]
    fn more_writes_never_increase_recommended_replication(
        c in arb_character(),
        d in 2u32..48,
    ) {
        // Dr* grows with sqrt(2p - 1): lowering p can only shrink it.
        let high = recommend_latency_shape(&c, d, 0.95);
        let low = recommend_latency_shape(&c, d, 0.6);
        prop_assert!(low.dr <= high.dr, "low-p {low} vs high-p {high}");
    }

    #[test]
    fn locality_shifts_recommendations_toward_replication(
        c in arb_character(),
        d in 2u32..48,
        l in 1.5f64..20.0,
    ) {
        let base = recommend_latency_shape(&c, d, 1.0);
        let local = recommend_latency_shape(&c.with_locality(l), d, 1.0);
        prop_assert!(local.dr >= base.dr, "base {base} local {local}");
    }

    #[test]
    fn rw_latency_interpolates_between_read_and_write(
        c in arb_character(),
        ds in 1u32..16,
        dr in 1u32..6,
        p in 0.0f64..1.0,
    ) {
        let read = rw_latency(&c, ds, dr, 1.0);
        let write = rw_latency(&c, ds, dr, 0.0);
        let mix = rw_latency(&c, ds, dr, p);
        let expect = p * read + (1.0 - p) * write;
        prop_assert!((mix - expect).abs() < 1e-9);
    }

    #[test]
    fn optimal_rw_aspect_satisfies_first_order_conditions(
        c in arb_character(),
        d in 2u32..64,
        p in 0.55f64..1.0,
    ) {
        let (ds, _) = optimal_rw_aspect(&c, d, p).expect("p > 0.5");
        // Perturbing Ds either way from the optimum cannot help.
        let eval = |ds: f64| {
            let dr = d as f64 / ds;
            c.s_ms / (3.0 * ds)
                + p * c.r_ms / (2.0 * dr)
                + (1.0 - p) * (c.r_ms - c.r_ms / (2.0 * dr))
        };
        let t0 = eval(ds);
        prop_assert!(eval(ds * 1.01) >= t0 - 1e-12);
        prop_assert!(eval(ds * 0.99) >= t0 - 1e-12);
    }
}
