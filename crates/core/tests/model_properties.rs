//! Property tests for the Section 2 models and the optimizer, driven by
//! the deterministic in-repo harness (`mimd_sim::check`).

use mimd_core::models::{
    best_read_latency, best_rlook_time, best_rw_latency, optimal_read_aspect, optimal_rw_aspect,
    read_latency, recommend_latency_shape, recommend_throughput_shape, rlook_request_time,
    rw_latency, DiskCharacter, MAX_DR,
};
use mimd_core::Shape;
use mimd_sim::check::{check_cases, f64_in};
use mimd_sim::SimRng;

fn arb_character(rng: &mut SimRng) -> DiskCharacter {
    DiskCharacter {
        s_ms: f64_in(rng, 4.0, 30.0),
        r_ms: f64_in(rng, 3.0, 12.0),
        overhead_ms: f64_in(rng, 0.2, 4.0),
    }
}

#[test]
fn continuous_optimum_product_is_d() {
    check_cases("continuous optimum product is d", 256, |_, rng| {
        let c = arb_character(rng);
        let d = rng.range(1, 64) as u32;
        let (ds, dr) = optimal_read_aspect(&c, d);
        assert!((ds * dr - d as f64).abs() < 1e-6);
        assert!(ds > 0.0 && dr > 0.0);
    });
}

#[test]
fn eq6_is_a_lower_envelope_of_eq4() {
    check_cases("eq6 is a lower envelope of eq4", 128, |_, rng| {
        let c = arb_character(rng);
        let d = rng.range(1, 64) as u32;
        let best = best_read_latency(&c, d);
        for shape in Shape::enumerate_sr(d, d.max(1)) {
            let t = read_latency(&c, shape.ds, shape.dr);
            assert!(t >= best - 1e-9, "{shape}: {t} < {best}");
        }
    });
}

#[test]
fn eq11_is_a_lower_envelope_of_eq9() {
    check_cases("eq11 is a lower envelope of eq9", 128, |_, rng| {
        let c = arb_character(rng);
        let d = rng.range(1, 64) as u32;
        let p = f64_in(rng, 0.51, 1.0);
        let best = best_rw_latency(&c, d, p).expect("p > 0.5");
        for shape in Shape::enumerate_sr(d, d.max(1)) {
            let t = rw_latency(&c, shape.ds, shape.dr, p);
            assert!(t >= best - 1e-9, "{shape}: {t} < {best}");
        }
    });
}

#[test]
fn eq14_is_a_lower_envelope_of_eq12() {
    check_cases("eq14 is a lower envelope of eq12", 128, |_, rng| {
        let c = arb_character(rng);
        let d = rng.range(1, 64) as u32;
        let p = f64_in(rng, 0.51, 1.0);
        let q = f64_in(rng, 3.1, 64.0);
        let best = best_rlook_time(&c, d, p, q).expect("p > 0.5");
        for shape in Shape::enumerate_sr(d, d.max(1)) {
            let t = rlook_request_time(&c, shape.ds, shape.dr, p, q);
            assert!(t >= best - 1e-9, "{shape}: {t} < {best}");
        }
    });
}

#[test]
fn latency_improves_monotonically_with_budget() {
    check_cases(
        "latency improves monotonically with budget",
        128,
        |_, rng| {
            let c = arb_character(rng);
            let p = f64_in(rng, 0.6, 1.0);
            let mut prev = f64::INFINITY;
            for d in 1..=32u32 {
                let t = best_rw_latency(&c, d, p).expect("p > 0.5");
                assert!(t <= prev + 1e-12, "d={d}");
                prev = t;
            }
        },
    );
}

#[test]
fn recommendation_is_well_formed() {
    check_cases("recommendation is well formed", 256, |_, rng| {
        let c = arb_character(rng);
        let d = rng.range(1, 64) as u32;
        let p = rng.unit();
        let s = recommend_latency_shape(&c, d, p);
        assert_eq!(s.disks(), d);
        assert_eq!(s.dm, 1);
        assert!(s.dr <= MAX_DR || s.dr == 1);
        assert_eq!(d % s.dr, 0);
        if p <= 0.5 {
            assert_eq!(s, Shape::striping(d));
        }
    });
}

#[test]
fn throughput_recommendation_is_well_formed() {
    check_cases("throughput recommendation is well formed", 256, |_, rng| {
        let c = arb_character(rng);
        let d = rng.range(1, 64) as u32;
        let p = rng.unit();
        let q = f64_in(rng, 0.5, 64.0);
        let s = recommend_throughput_shape(&c, d, p, q);
        assert_eq!(s.disks(), d);
        assert!(s.dr <= MAX_DR || s.dr == 1);
    });
}

#[test]
fn more_writes_never_increase_recommended_replication() {
    check_cases(
        "more writes never increase recommended replication",
        256,
        |_, rng| {
            let c = arb_character(rng);
            let d = rng.range(2, 48) as u32;
            // Dr* grows with sqrt(2p - 1): lowering p can only shrink it.
            let high = recommend_latency_shape(&c, d, 0.95);
            let low = recommend_latency_shape(&c, d, 0.6);
            assert!(low.dr <= high.dr, "low-p {low} vs high-p {high}");
        },
    );
}

#[test]
fn locality_shifts_recommendations_toward_replication() {
    check_cases(
        "locality shifts recommendations toward replication",
        256,
        |_, rng| {
            let c = arb_character(rng);
            let d = rng.range(2, 48) as u32;
            let l = f64_in(rng, 1.5, 20.0);
            let base = recommend_latency_shape(&c, d, 1.0);
            let local = recommend_latency_shape(&c.with_locality(l), d, 1.0);
            assert!(local.dr >= base.dr, "base {base} local {local}");
        },
    );
}

#[test]
fn rw_latency_interpolates_between_read_and_write() {
    check_cases(
        "rw latency interpolates between read and write",
        256,
        |_, rng| {
            let c = arb_character(rng);
            let ds = rng.range(1, 16) as u32;
            let dr = rng.range(1, 6) as u32;
            let p = rng.unit();
            let read = rw_latency(&c, ds, dr, 1.0);
            let write = rw_latency(&c, ds, dr, 0.0);
            let mix = rw_latency(&c, ds, dr, p);
            let expect = p * read + (1.0 - p) * write;
            assert!((mix - expect).abs() < 1e-9);
        },
    );
}

#[test]
fn optimal_rw_aspect_satisfies_first_order_conditions() {
    check_cases(
        "optimal rw aspect satisfies first-order conditions",
        256,
        |_, rng| {
            let c = arb_character(rng);
            let d = rng.range(2, 64) as u32;
            let p = f64_in(rng, 0.55, 1.0);
            let (ds, _) = optimal_rw_aspect(&c, d, p).expect("p > 0.5");
            // Perturbing Ds either way from the optimum cannot help.
            let eval = |ds: f64| {
                let dr = d as f64 / ds;
                c.s_ms / (3.0 * ds)
                    + p * c.r_ms / (2.0 * dr)
                    + (1.0 - p) * (c.r_ms - c.r_ms / (2.0 * dr))
            };
            let t0 = eval(ds);
            assert!(eval(ds * 1.01) >= t0 - 1e-12);
            assert!(eval(ds * 0.99) >= t0 - 1e-12);
        },
    );
}
