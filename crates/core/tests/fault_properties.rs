//! Properties of the fault-injection layer.
//!
//! The two guarantees the rest of the repo leans on:
//!
//! 1. **Value-neutrality** — an empty [`FaultPlan`] produces a run report
//!    byte-identical (by `Debug` rendering, which covers every field and
//!    every sample) to a config that never mentions faults at all.
//! 2. **Determinism** — a fixed-seed fault scenario replays bit-exactly:
//!    all fault randomness comes from one named stream, so reruns agree
//!    on every counter and every response-time sample.
//!
//! Plus behavioural checks: hot-spare rebuild restores the failed disk to
//! service (with the debug-build replica-spacing invariant running on the
//! rebuilt layout), media-error retries recover reads, and redirection
//! steers reads off fail-slow disks.

use mimd_core::{ArraySim, EngineConfig, FaultPlan, RunReport, Shape};
use mimd_sim::{SimDuration, SimTime};
use mimd_workload::{SyntheticSpec, Trace};

fn trace() -> Trace {
    SyntheticSpec::cello_base().generate(77, 1_500)
}

fn run(cfg: EngineConfig, t: &Trace) -> RunReport {
    let mut sim = ArraySim::new(cfg, t.data_sectors).expect("fits");
    sim.run_trace(t)
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    let t = trace();
    for shape in [Shape::sr_array(2, 3).expect("valid"), Shape::mirror(2)] {
        let bare = run(EngineConfig::new(shape), &t);
        // An explicitly-attached default plan and a plan whose only
        // content is inert flags (redirect with no fail-slow windows)
        // must both take the never-consulting path.
        let explicit = run(
            EngineConfig::new(shape).with_faults(FaultPlan::default()),
            &t,
        );
        let inert = run(
            EngineConfig::new(shape).with_faults(FaultPlan::new().redirect_slow_reads()),
            &t,
        );
        let want = format!("{bare:?}");
        assert_eq!(want, format!("{explicit:?}"), "shape {shape}");
        assert_eq!(want, format!("{inert:?}"), "shape {shape}");
        assert!(!bare.faults.active);
    }
}

#[test]
fn neutral_fail_slow_window_changes_observability_only() {
    // A factor-1.0 window activates the fault layer (the report gains
    // window samples) without perturbing a single service time: every
    // performance-bearing field must match the fault-free run exactly.
    let t = trace();
    let shape = Shape::sr_array(2, 3).expect("valid");
    let bare = run(EngineConfig::new(shape), &t);
    let neutral_plan = FaultPlan::new().fail_slow(
        1,
        SimTime::from_secs(3) + SimDuration::from_nanos(7),
        SimTime::from_secs(9) + SimDuration::from_nanos(13),
        1.0,
    );
    let mut neutral = run(EngineConfig::new(shape).with_faults(neutral_plan), &t);
    assert!(neutral.faults.active);
    assert!(
        !neutral.faults.degraded_ms.is_empty(),
        "completions inside the window must be classified degraded"
    );
    assert_eq!(neutral.faults.retries, 0);
    assert_eq!(neutral.faults.redirects, 0);
    // Blank the observability block; everything else must match. The
    // determinism witness counts as observability here: the window's
    // SlowStart/SlowEnd pops are real events, so the event-order digest
    // legitimately differs even though no service time moved.
    neutral.faults = Default::default();
    neutral.witness = bare.witness;
    assert_eq!(format!("{bare:?}"), format!("{neutral:?}"));
}

#[test]
fn fixed_seed_fault_scenarios_replay_bit_exactly() {
    let t = trace();
    let plan = FaultPlan::new()
        .fail_stop_with_spare(2, SimTime::from_secs(5))
        .fail_slow(0, SimTime::from_secs(1), SimTime::from_secs(20), 4.0)
        .media_errors(0.02, 0.01)
        .retry(
            SimDuration::from_millis(60),
            3,
            SimDuration::from_millis(500),
        )
        .redirect_slow_reads()
        .rebuild(SimDuration::from_millis(50), 512);
    let cfg = || {
        EngineConfig::new(Shape::new(1, 2, 2).expect("valid"))
            .with_seed(9)
            .with_faults(plan.clone())
    };
    let a = run(cfg(), &t);
    let b = run(cfg(), &t);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.faults.active);
}

#[test]
fn hot_spare_rebuild_restores_the_disk_to_service() {
    // An open-loop trace over a small data set: rebuild copy chunks are
    // throttled to foreground-idle gaps (a closed loop would starve them
    // forever, by design), and the data is small enough that the copy
    // finishes well inside the run. The debug-build replica-spacing
    // invariant runs on the rebuilt layout at completion.
    let mut spec = SyntheticSpec::cello_base();
    spec.data_sectors = 120_000;
    spec.rate_per_sec = 25.0;
    let t = spec.generate(5, 2_500);
    let plan = FaultPlan::new()
        .fail_stop_with_spare(1, SimTime::from_secs(2))
        .rebuild(SimDuration::from_millis(100), 2048);
    let mut sim = ArraySim::new(
        EngineConfig::new(Shape::mirror(2)).with_faults(plan),
        t.data_sectors,
    )
    .expect("fits");
    let r = sim.run_trace(&t);
    assert_eq!(r.completed, t.len() as u64);
    assert_eq!(r.failed_requests, 0, "the surviving mirror covers reads");
    assert_eq!(r.faults.rebuilds_completed, 1, "rebuild must finish");
    assert!(r.faults.rebuild_chunks > 0);
    assert!(r.faults.rebuild_duration > SimDuration::ZERO);
    assert!(
        !sim.disk_is_dead(1),
        "the rebuilt disk must return to service"
    );
    assert!(
        !r.faults.rebuilding_ms.is_empty(),
        "completions during the copy must be classified rebuilding"
    );
    assert!(
        !r.faults.healthy_ms.is_empty(),
        "completions after restoration must be classified healthy"
    );
}

#[test]
fn media_error_retries_recover_reads() {
    let t = trace();
    let plan = FaultPlan::new().media_errors(0.05, 0.0).retry_budget(4);
    let r = run(EngineConfig::new(Shape::mirror(2)).with_faults(plan), &t);
    assert_eq!(r.completed, t.len() as u64);
    assert!(
        r.faults.media_errors > 0,
        "a 5% rate must fire on 1.5k reqs"
    );
    assert!(r.faults.retries > 0);
    assert_eq!(
        r.failed_requests, r.faults.unrecoverable,
        "the only failures are retry-budget exhaustion"
    );
}

#[test]
fn redirection_steers_reads_off_a_slow_disk() {
    let t = trace();
    let window = (SimTime::from_secs(2), SimTime::from_secs(30));
    let slow = FaultPlan::new().fail_slow(1, window.0, window.1, 8.0);
    let redirected = slow.clone().redirect_slow_reads();
    let stay = run(EngineConfig::new(Shape::mirror(2)).with_faults(slow), &t);
    let steer = run(
        EngineConfig::new(Shape::mirror(2)).with_faults(redirected),
        &t,
    );
    assert_eq!(stay.faults.redirects, 0);
    assert!(steer.faults.redirects > 0, "redirection must engage");
    assert!(
        steer.mean_response_ms() < stay.mean_response_ms(),
        "steering off an 8x-slow disk must help: {} vs {}",
        steer.mean_response_ms(),
        stay.mean_response_ms()
    );
}

#[test]
fn timeouts_fire_and_back_off_on_a_dead_mirror_half() {
    // Without a spare, reads racing the failure time out and retry onto
    // the surviving mirror; the run still completes everything.
    let t = trace();
    let plan = FaultPlan::new().fail_stop(0, SimTime::from_secs(4)).retry(
        SimDuration::from_millis(80),
        3,
        SimDuration::from_millis(640),
    );
    let r = run(EngineConfig::new(Shape::mirror(2)).with_faults(plan), &t);
    assert_eq!(r.completed, t.len() as u64);
    assert_eq!(r.failed_requests, 0, "mirror covers every read");
    assert!(
        !r.faults.degraded_ms.is_empty(),
        "post-failure completions are degraded"
    );
}
