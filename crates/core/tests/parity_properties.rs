//! Properties of the parity RAID (4/5) organizations.
//!
//! The guarantees the reliability story rests on:
//!
//! 1. **Value-neutrality** — a config that never mentions parity takes
//!    the pre-parity code path exactly: no parity counter moves and the
//!    run replays bit-identically. (Cross-build neutrality — the same
//!    bytes as a build that predates parity — is pinned by the fig06
//!    golden-md5 gate in CI.)
//! 2. **Degraded service** — after a fail-stop with no spare, every
//!    request still completes: reads reconstruct from the `G−1`
//!    survivors, writes fall back to peer-read parity updates, and
//!    nothing is unrecoverable.
//! 3. **Recovery** — a hot-spare rebuild reconstructs every chunk from
//!    the survivors and returns the array to healthy-window service
//!    times.
//!
//! Plus the failure edge the MTTDL formulas price: a second failure in
//! the same parity group is data loss, and the engine reports it as
//! failed requests rather than wedging.

use mimd_core::{ArraySim, EngineConfig, FaultPlan, ParityConfig, RunReport, Shape};
use mimd_sim::{SimDuration, SimTime};
use mimd_workload::{SyntheticSpec, Trace};

fn trace() -> Trace {
    SyntheticSpec::cello_base().generate(77, 1_500)
}

/// A small data set at a modest rate, so the idle-throttled
/// reconstruction finishes well inside the run (same recipe as the
/// hot-spare tests in `fault_properties`).
fn rebuild_friendly_trace() -> Trace {
    let mut spec = SyntheticSpec::cello_base();
    spec.data_sectors = 200_000;
    spec.rate_per_sec = 25.0;
    spec.generate(5, 2_500)
}

fn run(cfg: EngineConfig, t: &Trace) -> RunReport {
    let mut sim = ArraySim::new(cfg, t.data_sectors).expect("fits");
    sim.run_trace(t)
}

fn raid5(group: u32) -> EngineConfig {
    EngineConfig::new(Shape::striping(8)).with_parity(ParityConfig::raid5(group))
}

#[test]
fn parity_free_configs_never_touch_parity_state() {
    let t = trace();
    for shape in [
        Shape::striping(4),
        Shape::mirror(2),
        Shape::sr_array(2, 3).expect("valid"),
    ] {
        let a = run(EngineConfig::new(shape), &t);
        let f = &a.faults;
        assert_eq!(
            (f.degraded_reads, f.rmw_updates, f.reconstruction_chunks),
            (0, 0, 0),
            "shape {shape}: no parity counter may move without a parity config"
        );
        // And the run replays bit-exactly — the parity branch in the
        // submit path must be a pure predicate, not a state change.
        let b = run(EngineConfig::new(shape), &t);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "shape {shape}");
    }
}

#[test]
fn healthy_parity_arrays_pay_rmw_but_fail_nothing() {
    let t = trace();
    for (label, cfg) in [
        ("raid5", raid5(4)),
        (
            "raid4",
            EngineConfig::new(Shape::striping(8)).with_parity(ParityConfig::raid4(4)),
        ),
    ] {
        let r = run(cfg, &t);
        assert_eq!(r.completed, t.len() as u64, "{label}");
        assert_eq!(r.failed_requests, 0, "{label}");
        assert_eq!(r.faults.degraded_reads, 0, "{label}: healthy array");
        assert!(
            r.faults.rmw_updates > 0,
            "{label}: small writes must take the read-modify-write path"
        );
    }
}

#[test]
fn degraded_reads_complete_every_request_with_zero_unrecoverable() {
    let t = trace();
    let plan = FaultPlan::new().fail_stop(0, SimTime::from_secs(5));
    let r = run(raid5(4).with_faults(plan), &t);
    assert_eq!(r.completed, t.len() as u64, "every request completes");
    assert_eq!(r.failed_requests, 0, "G−1 survivors cover every read");
    assert_eq!(r.faults.unrecoverable, 0);
    assert!(
        r.faults.degraded_reads > 0,
        "reads of the dead disk must reconstruct from survivors"
    );
    assert!(
        !r.faults.degraded_ms.is_empty(),
        "post-failure completions are classified degraded"
    );
}

#[test]
fn parity_rebuild_restores_healthy_window_response_times() {
    let t = rebuild_friendly_trace();
    let plan = FaultPlan::new()
        .fail_stop_with_spare(0, SimTime::from_secs(10))
        .rebuild(SimDuration::from_secs(1), 2_048);
    let mut sim = ArraySim::new(raid5(4).with_faults(plan), t.data_sectors).expect("fits");
    let r = sim.run_trace(&t);
    assert_eq!(r.completed, t.len() as u64);
    assert_eq!(r.failed_requests, 0);
    assert_eq!(r.faults.rebuilds_completed, 1, "reconstruction must finish");
    assert!(
        r.faults.reconstruction_chunks > 0,
        "rebuild chunks are XOR reconstructions, not mirror copies"
    );
    assert!(!sim.disk_is_dead(0), "the spare returns disk 0 to service");
    assert!(
        !r.faults.rebuilding_ms.is_empty(),
        "completions during reconstruction are classified rebuilding"
    );
    assert!(
        !r.faults.healthy_ms.is_empty(),
        "completions after restoration are classified healthy again"
    );
    // Once the spare holds the reconstructed data, the single-leg read
    // path comes back: the healthy windows (before the failure and after
    // the rebuild) must service like a run that never saw a fault. The
    // margin absorbs the queue backlog drained right after restoration.
    let bare = run(raid5(4), &t);
    let healthy = r.faults.healthy_ms.mean();
    assert!(
        healthy < bare.mean_response_ms() * 1.5,
        "healthy-window mean ({healthy:.2} ms) must track the fault-free mean ({:.2} ms)",
        bare.mean_response_ms()
    );
}

#[test]
fn second_failure_in_a_group_is_data_loss_not_a_wedge() {
    let t = trace();
    // Disks 0 and 1 are both members of RAID group 0 at G=4.
    let plan = FaultPlan::new()
        .fail_stop(0, SimTime::from_secs(5))
        .fail_stop(1, SimTime::from_secs(10));
    let r = run(raid5(4).with_faults(plan), &t);
    assert_eq!(
        r.completed,
        t.len() as u64,
        "every request must still resolve (some as failures)"
    );
    assert!(
        r.failed_requests > 0,
        "two dead members of one group exceed single-parity protection"
    );
    // The untouched group (disks 4..8) keeps serving; failures cannot be
    // total.
    assert!(
        r.failed_requests < t.len() as u64,
        "the independent second group keeps serving"
    );
}
