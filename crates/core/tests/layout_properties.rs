//! Property tests for the layout's logical→physical mapping, driven by the
//! deterministic in-repo harness (`mimd_sim::check`).

use mimd_core::layout::{DataMapper, TrackLoc};
use mimd_disk::{DiskParams, Geometry};
use mimd_sim::check::check_cases;
use mimd_sim::SimRng;

fn geometry() -> Geometry {
    Geometry::new(&DiskParams::st39133lwv())
}

fn arb_mapper(rng: &mut SimRng, g: &Geometry) -> DataMapper {
    let dr = 1 + rng.below(g.surfaces() as u64) as u32;
    DataMapper::new(g, dr).expect("1 <= dr <= surfaces is always accepted")
}

#[test]
fn locate_round_trips_for_every_data_sector() {
    check_cases("locate round trips for every data sector", 64, |_, rng| {
        let g = geometry();
        let m = arb_mapper(rng, &g);
        for _ in 0..64 {
            let s = rng.below(m.capacity());
            let loc = m.locate(s).expect("within capacity");
            assert_eq!(
                m.index_of(loc),
                Some(s),
                "dr={} sector {s} -> {loc:?}",
                m.dr()
            );
        }
        // Capacity edges round trip too.
        for s in [0, m.capacity() - 1] {
            let loc = m.locate(s).expect("within capacity");
            assert_eq!(m.index_of(loc), Some(s));
        }
    });
}

#[test]
fn locate_is_injective_across_distinct_sectors() {
    check_cases(
        "locate is injective across distinct sectors",
        64,
        |_, rng| {
            let g = geometry();
            let m = arb_mapper(rng, &g);
            let a = rng.below(m.capacity());
            let b = rng.below(m.capacity());
            if a == b {
                return;
            }
            let la = m.locate(a).expect("within capacity");
            let lb = m.locate(b).expect("within capacity");
            assert_ne!(la, lb, "sectors {a} and {b} collided at {la:?}");
        },
    );
}

#[test]
fn located_tracks_are_physically_realisable() {
    check_cases("located tracks are physically realisable", 64, |_, rng| {
        let g = geometry();
        let m = arb_mapper(rng, &g);
        let s = rng.below(m.capacity());
        let loc = m.locate(s).expect("within capacity");
        // Every replica surface of the group exists on the drive, and the
        // track really has `spt` sectors at that cylinder.
        assert!(loc.cylinder < g.total_cylinders());
        assert_eq!(g.sectors_per_track(loc.cylinder), Some(loc.spt));
        assert!(loc.sector < loc.spt);
        assert!((loc.group + 1) * m.dr() <= g.surfaces());
    });
}

#[test]
fn foreign_locations_are_rejected() {
    check_cases("foreign locations are rejected", 64, |_, rng| {
        let g = geometry();
        let m = arb_mapper(rng, &g);
        let s = rng.below(m.capacity());
        let loc = m.locate(s).expect("within capacity");
        assert_eq!(
            m.index_of(TrackLoc {
                group: m.groups_per_cylinder(),
                ..loc
            }),
            None
        );
        assert_eq!(
            m.index_of(TrackLoc {
                sector: loc.spt,
                ..loc
            }),
            None
        );
        assert_eq!(
            m.index_of(TrackLoc {
                cylinder: g.total_cylinders(),
                ..loc
            }),
            None
        );
    });
}
