//! The sharded engine's core contract: the popped event stream — and
//! therefore every report byte — is identical at any worker count.
//!
//! `ArraySim::set_parallelism` may only change wall-clock concurrency.
//! These tests capture the full pop stream (`(time, entity, seq, disk,
//! kind)` per event) under the `set_pop_capture` test hook and require it
//! to match record-for-record between a serial run and 2- and 8-worker
//! runs, across randomized shapes/workloads and through a faulted
//! hot-spare rebuild running alongside cross-group traffic.

use mimd_core::{ArraySim, EngineConfig, FaultPlan, ParityConfig, Shape};
use mimd_sim::check::check_cases;
use mimd_sim::SimTime;
use mimd_workload::{SyntheticSpec, Trace};

/// One captured run: the full pop stream, the witness, and the report's
/// complete `Debug` rendering (which covers every counter and sample).
#[allow(clippy::type_complexity)]
fn capture(
    cfg: &EngineConfig,
    trace: &Trace,
    workers: usize,
) -> (Vec<(u64, u32, u64, u32, u8)>, u64, String) {
    let mut sim = ArraySim::new(cfg.clone(), trace.data_sectors).expect("shape fits");
    sim.set_parallelism(workers);
    sim.set_pop_capture(true);
    let report = sim.run_trace(trace);
    (sim.take_pop_stream(), report.witness, format!("{report:?}"))
}

fn assert_equivalent(cfg: &EngineConfig, trace: &Trace, label: &str) {
    let (serial_pops, serial_witness, serial_report) = capture(cfg, trace, 1);
    assert!(!serial_pops.is_empty(), "{label}: a real run pops events");
    for workers in [2usize, 8] {
        let (pops, witness, report) = capture(cfg, trace, workers);
        assert_eq!(
            serial_pops.len(),
            pops.len(),
            "{label}: pop count diverged at {workers} workers"
        );
        // Record-by-record so a divergence reports the first bad event,
        // not a megabyte of vec diff.
        for (i, (a, b)) in serial_pops.iter().zip(pops.iter()).enumerate() {
            assert_eq!(
                a, b,
                "{label}: pop {i} diverged at {workers} workers (time, entity, seq, disk, kind)"
            );
        }
        assert_eq!(
            serial_witness, witness,
            "{label}: witness diverged at {workers} workers"
        );
        assert_eq!(
            serial_report, report,
            "{label}: report bytes diverged at {workers} workers"
        );
    }
}

#[test]
fn sharded_pop_stream_equals_serial_on_random_configs() {
    let shapes = [
        Shape::striping(4),
        Shape::striping(7),
        Shape::mirror(2),
        Shape::mirror(3),
        Shape::sr_array(2, 3).expect("valid"),
        Shape::sr_array(3, 2).expect("valid"),
        Shape::raid10(4).expect("even"),
        Shape::new(2, 2, 2).expect("valid"),
    ];
    check_cases("sharded pop stream equals serial", 6, |case, rng| {
        let shape = shapes[rng.below(shapes.len() as u64) as usize];
        let spec = match rng.below(3) {
            0 => SyntheticSpec::cello_base(),
            1 => SyntheticSpec::cello_disk6(),
            _ => SyntheticSpec::tpcc(),
        };
        let n = 150 + rng.below(250) as usize;
        let trace = spec.generate(rng.below(u64::MAX), n);
        let mut cfg = EngineConfig::new(shape).with_seed(rng.below(u64::MAX));
        if rng.chance(0.5) {
            cfg = cfg.with_perfect_knowledge();
        }
        assert_equivalent(&cfg, &trace, &format!("case {case} shape {shape}"));
    });
}

#[test]
fn faulted_hot_spare_rebuild_is_identical_at_any_worker_count() {
    // Two mirror groups: the rebuild is confined to the failed disk's
    // group while foreground traffic keeps crossing both — the exact
    // seam the note merge has to order deterministically.
    let shape = Shape::new(1, 2, 2).expect("valid");
    let trace = SyntheticSpec::cello_base().generate(1313, 1_500);
    let plan = FaultPlan::new()
        .fail_stop_with_spare(1, SimTime::from_secs(2))
        .rebuild(mimd_sim::SimDuration::from_secs(1), 2_048);
    let cfg = EngineConfig::new(shape).with_faults(plan);

    // The scenario must actually exercise the rebuild machinery.
    let mut sim = ArraySim::new(cfg.clone(), trace.data_sectors).expect("fits");
    let report = sim.run_trace(&trace);
    assert_eq!(report.faults.rebuilds_completed, 1, "rebuild must finish");
    assert!(!sim.disk_is_dead(1), "spare restored the disk");

    assert_equivalent(&cfg, &trace, "hot-spare rebuild");
}

#[test]
fn raid5_pop_stream_equals_serial() {
    // Two parity groups of G=4 over eight disks: small-write RMW fan-out
    // and full-stripe writes cross shard boundaries only through the
    // conductor, so the pop stream must be worker-count-invariant just
    // like the mirrored shapes.
    let trace = SyntheticSpec::cello_base().generate(4242, 1_200);
    let cfg = EngineConfig::new(Shape::striping(8)).with_parity(ParityConfig::raid5(4));
    assert_equivalent(&cfg, &trace, "raid5 healthy");
}

#[test]
fn raid5_degraded_rebuild_is_identical_at_any_worker_count() {
    // A dead member of group 0 plus a hot-spare reconstruction riding the
    // delayed queues, while foreground traffic keeps hitting both groups:
    // degraded-read fan-out, two-phase RMW replanning, and the
    // reads_left countdown all have to merge deterministically.
    let mut spec = SyntheticSpec::cello_base();
    spec.data_sectors = 200_000;
    spec.rate_per_sec = 25.0;
    let trace = spec.generate(99, 1_800);
    let plan = FaultPlan::new()
        .fail_stop_with_spare(1, SimTime::from_secs(8))
        .rebuild(mimd_sim::SimDuration::from_secs(1), 2_048);
    let cfg = EngineConfig::new(Shape::striping(8))
        .with_parity(ParityConfig::raid5(4))
        .with_faults(plan);

    // The scenario must actually exercise the parity rebuild machinery.
    let mut sim = ArraySim::new(cfg.clone(), trace.data_sectors).expect("fits");
    let report = sim.run_trace(&trace);
    assert_eq!(report.faults.rebuilds_completed, 1, "rebuild must finish");
    assert!(report.faults.reconstruction_chunks > 0);

    assert_equivalent(&cfg, &trace, "raid5 degraded rebuild");
}
