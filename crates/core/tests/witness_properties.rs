//! Properties of the determinism witness: identical runs produce an
//! identical digest, the digest reacts to anything that reorders events,
//! and a fresh run never inherits a previous run's folds.

use mimd_core::{ArraySim, EngineConfig, Shape};
use mimd_sim::witness::DetWitness;
use mimd_workload::{IometerSpec, SyntheticSpec};

fn run_witness(seed: u64, requests: usize) -> u64 {
    let trace = SyntheticSpec::cello_base().generate(seed, requests);
    let mut sim = ArraySim::new(
        EngineConfig::new(Shape::sr_array(2, 3).unwrap()),
        trace.data_sectors,
    )
    .unwrap();
    sim.run_trace(&trace).witness
}

#[test]
fn identical_runs_produce_identical_witnesses() {
    assert_eq!(run_witness(7, 400), run_witness(7, 400));
}

#[test]
fn witness_is_not_the_empty_digest() {
    // A run that processed events must have folded something.
    assert_ne!(run_witness(7, 400), DetWitness::new().value());
}

#[test]
fn different_traces_produce_different_witnesses() {
    assert_ne!(run_witness(7, 400), run_witness(8, 400));
    assert_ne!(run_witness(7, 400), run_witness(7, 401));
}

#[test]
fn witness_resets_between_runs_on_one_instance() {
    let trace = SyntheticSpec::cello_base().generate(7, 400);
    let empty = SyntheticSpec::cello_base().generate(7, 0);
    let mut sim = ArraySim::new(
        EngineConfig::new(Shape::sr_array(2, 3).unwrap()),
        trace.data_sectors,
    )
    .unwrap();
    // An empty replay pops nothing: its witness is the empty digest.
    let first = sim.run_trace(&empty).witness;
    assert_eq!(first, DetWitness::new().value());
    // The empty run left the sim untouched, so the real replay must match
    // a fresh instance's witness — nothing compounds across runs.
    let second = sim.run_trace(&trace).witness;
    assert_eq!(second, run_witness(7, 400));
}

#[test]
fn closed_loop_runs_stamp_a_witness() {
    let spec = IometerSpec::random_read_512(1 << 20);
    let mk = || {
        let mut sim =
            ArraySim::new(EngineConfig::new(Shape::sr_array(2, 3).unwrap()), 1 << 20).unwrap();
        sim.run_closed_loop(&spec, 4, 200).witness
    };
    let a = mk();
    assert_ne!(a, DetWitness::new().value());
    assert_eq!(a, mk());
}
